(** Recursive-descent SQL parser.

    Keywords are recognized case-insensitively. Operator precedence, tightest
    first: unary minus; [* / %]; [+ - ||]; comparisons / IS NULL / LIKE /
    BETWEEN / IN / EXISTS; NOT; AND; OR. *)

exception Parse_error of string * int  (** message, source offset *)

type state = { toks : Lexer.lexed array; mutable pos : int }

let error st fmt =
  let off =
    if st.pos < Array.length st.toks then st.toks.(st.pos).Lexer.pos else 0
  in
  Fmt.kstr (fun msg -> raise (Parse_error (msg, off))) fmt

let peek st = st.toks.(st.pos).Lexer.token
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).Lexer.token
  else Token.Eof

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  if peek st = tok then advance st
  else
    error st "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek st))

(* Keyword helpers: a keyword is an identifier compared case-insensitively. *)
let kw_of st =
  match peek st with
  | Token.Ident s -> Some (String.uppercase_ascii s)
  | _ -> None

let is_kw st k = kw_of st = Some k

let accept_kw st k =
  if is_kw st k then begin
    advance st;
    true
  end
  else false

let expect_kw st k =
  if not (accept_kw st k) then
    error st "expected keyword %s but found %s" k (Token.to_string (peek st))

let ident st =
  match next st with
  | Token.Ident s -> s
  | t -> error st "expected identifier, found %s" (Token.to_string t)

let int_lit st =
  match next st with
  | Token.Int_lit i -> i
  | t -> error st "expected integer, found %s" (Token.to_string t)

let string_lit st =
  match next st with
  | Token.String_lit s -> s
  | t -> error st "expected string literal, found %s" (Token.to_string t)

(* Words that terminate an implicit alias ("FROM t WHERE ..." must not read
   WHERE as t's alias). *)
let reserved =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "LIMIT"; "TOP";
    "JOIN"; "INNER"; "LEFT"; "RIGHT"; "FULL"; "CROSS"; "OUTER"; "ON"; "AND";
    "OR"; "NOT"; "AS"; "BY"; "ASC"; "DESC"; "UNION"; "VALUES"; "SET"; "FOR";
    "PARTITION"; "IN"; "IS"; "LIKE"; "BETWEEN"; "EXISTS"; "CASE"; "WHEN";
    "EXCEPT"; "INTERSECT"; "ALL"; "EXPLAIN"; "INDEX"; "WITH";
    "THEN"; "ELSE"; "END"; "DISTINCT"; "INSERT"; "UPDATE"; "DELETE"; "CREATE";
    "DROP"; "INTO"; "BEGIN"; "IF"; "NOTIFY"; "DENY"; "AFTER"; "BEFORE";
    "ACCESS"; "TO"; "TRIGGER"; "AUDIT"; "EXPRESSION"; "TABLE"; "SENSITIVE";
  ]

let is_reserved s = List.mem (String.uppercase_ascii s) reserved

let interval_unit st =
  let u = String.uppercase_ascii (ident st) in
  match u with
  | "DAY" | "DAYS" -> Ast.Days
  | "MONTH" | "MONTHS" -> Ast.Months
  | "YEAR" | "YEARS" -> Ast.Years
  | _ -> error st "unknown interval unit %s" u

let aggregate_names = [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "OR" then Ast.E_binop (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "AND" then Ast.E_binop (Ast.And, lhs, parse_and st) else lhs

and parse_not st =
  if accept_kw st "NOT" then Ast.E_not (parse_not st) else parse_predicate st

and parse_predicate st =
  let lhs = parse_additive st in
  let negated = accept_kw st "NOT" in
  match kw_of st with
  | Some "IS" when not negated ->
    advance st;
    let neg = accept_kw st "NOT" in
    expect_kw st "NULL";
    Ast.E_is_null (lhs, neg)
  | Some "LIKE" ->
    advance st;
    Ast.E_like (lhs, parse_additive st, negated)
  | Some "BETWEEN" ->
    advance st;
    let lo = parse_additive st in
    expect_kw st "AND";
    let hi = parse_additive st in
    let b = Ast.E_between (lhs, lo, hi) in
    if negated then Ast.E_not b else b
  | Some "IN" ->
    advance st;
    expect st Token.Lparen;
    if is_kw st "SELECT" || is_kw st "WITH" then begin
      let q = parse_query st in
      expect st Token.Rparen;
      Ast.E_in_query (lhs, q, negated)
    end
    else begin
      let items = parse_expr_list st in
      expect st Token.Rparen;
      Ast.E_in_list (lhs, items, negated)
    end
  | _ when negated -> error st "expected LIKE, BETWEEN or IN after NOT"
  | _ -> (
    let bin op =
      advance st;
      Ast.E_binop (op, lhs, parse_additive st)
    in
    match peek st with
    | Token.Eq -> bin Ast.Eq
    | Token.Neq -> bin Ast.Neq
    | Token.Lt -> bin Ast.Lt
    | Token.Le -> bin Ast.Le
    | Token.Gt -> bin Ast.Gt
    | Token.Ge -> bin Ast.Ge
    | _ -> lhs)

and parse_additive st =
  let rec go lhs =
    match peek st with
    | Token.Plus ->
      advance st;
      go (Ast.E_binop (Ast.Add, lhs, parse_multiplicative st))
    | Token.Minus ->
      advance st;
      go (Ast.E_binop (Ast.Sub, lhs, parse_multiplicative st))
    | Token.Concat ->
      advance st;
      go (Ast.E_binop (Ast.Concat, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    match peek st with
    | Token.Star ->
      advance st;
      go (Ast.E_binop (Ast.Mul, lhs, parse_unary st))
    | Token.Slash ->
      advance st;
      go (Ast.E_binop (Ast.Div, lhs, parse_unary st))
    | Token.Percent ->
      advance st;
      go (Ast.E_binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.Minus ->
    advance st;
    Ast.E_neg (parse_unary st)
  | Token.Plus ->
    advance st;
    parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Token.Int_lit i ->
    advance st;
    Ast.E_int i
  | Token.Float_lit f ->
    advance st;
    Ast.E_float f
  | Token.String_lit s ->
    advance st;
    Ast.E_string s
  | Token.Lparen ->
    advance st;
    if is_kw st "SELECT" || is_kw st "WITH" then begin
      let q = parse_query st in
      expect st Token.Rparen;
      Ast.E_subquery q
    end
    else begin
      let e = parse_expr st in
      expect st Token.Rparen;
      e
    end
  | Token.Ident _ -> parse_ident_expr st
  | t -> error st "unexpected token %s in expression" (Token.to_string t)

and parse_ident_expr st =
  match kw_of st with
  | Some "NULL" ->
    advance st;
    Ast.E_null
  | Some "TRUE" ->
    advance st;
    Ast.E_bool true
  | Some "FALSE" ->
    advance st;
    Ast.E_bool false
  | Some "DATE" when (match peek2 st with Token.String_lit _ -> true | _ -> false) ->
    advance st;
    Ast.E_date (string_lit st)
  | Some "INTERVAL" ->
    advance st;
    let n =
      match next st with
      | Token.String_lit s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> n
        | None -> error st "invalid interval quantity %S" s)
      | Token.Int_lit n -> n
      | t -> error st "expected interval quantity, found %s" (Token.to_string t)
    in
    Ast.E_interval (n, interval_unit st)
  | Some "CASE" ->
    advance st;
    let rec whens acc =
      if accept_kw st "WHEN" then begin
        let c = parse_expr st in
        expect_kw st "THEN";
        let v = parse_expr st in
        whens ((c, v) :: acc)
      end
      else List.rev acc
    in
    let branches = whens [] in
    if branches = [] then error st "CASE requires at least one WHEN";
    let els = if accept_kw st "ELSE" then Some (parse_expr st) else None in
    expect_kw st "END";
    Ast.E_case (branches, els)
  | Some "EXISTS" ->
    advance st;
    expect st Token.Lparen;
    let q = parse_query st in
    expect st Token.Rparen;
    Ast.E_exists (q, false)
  | Some "EXTRACT" ->
    advance st;
    expect st Token.Lparen;
    let field = String.uppercase_ascii (ident st) in
    expect_kw st "FROM";
    let e = parse_expr st in
    expect st Token.Rparen;
    (match field with
    | "YEAR" -> Ast.E_func ("extract_year", [ e ])
    | "MONTH" -> Ast.E_func ("extract_month", [ e ])
    | _ -> error st "unsupported EXTRACT field %s" field)
  | Some "SUBSTRING" ->
    advance st;
    expect st Token.Lparen;
    let e = parse_expr st in
    let lo, len =
      if accept_kw st "FROM" then begin
        let lo = parse_expr st in
        let len = if accept_kw st "FOR" then Some (parse_expr st) else None in
        (lo, len)
      end
      else begin
        expect st Token.Comma;
        let lo = parse_expr st in
        let len =
          if peek st = Token.Comma then begin
            advance st;
            Some (parse_expr st)
          end
          else None
        in
        (lo, len)
      end
    in
    expect st Token.Rparen;
    (match len with
    | Some n -> Ast.E_func ("substring", [ e; lo; n ])
    | None -> Ast.E_func ("substring", [ e; lo ]))
  | Some up when List.mem up aggregate_names && peek2 st = Token.Lparen ->
    advance st;
    advance st;
    (* past '(' *)
    if peek st = Token.Star then begin
      advance st;
      expect st Token.Rparen;
      if up <> "COUNT" then error st "%s(*) is not valid" up;
      Ast.E_agg { func = "count"; arg = None; distinct = false }
    end
    else begin
      let distinct = accept_kw st "DISTINCT" in
      let e = parse_expr st in
      expect st Token.Rparen;
      Ast.E_agg { func = String.lowercase_ascii up; arg = Some e; distinct }
    end
  | _ -> (
    let name = ident st in
    match peek st with
    | Token.Lparen ->
      advance st;
      let args =
        if peek st = Token.Rparen then [] else parse_expr_list st
      in
      expect st Token.Rparen;
      Ast.E_func (String.lowercase_ascii name, args)
    | Token.Dot ->
      advance st;
      let field = ident st in
      Ast.E_column (Some name, field)
    | _ -> Ast.E_column (None, name))

and parse_expr_list st =
  let e = parse_expr st in
  if peek st = Token.Comma then begin
    advance st;
    e :: parse_expr_list st
  end
  else [ e ]

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

and parse_select_item st =
  if peek st = Token.Star then begin
    advance st;
    Ast.Si_star
  end
  else
    match (peek st, peek2 st) with
    | Token.Ident t, Token.Dot
      when st.pos + 2 < Array.length st.toks
           && st.toks.(st.pos + 2).Lexer.token = Token.Star ->
      advance st;
      advance st;
      advance st;
      Ast.Si_table_star t
    | _ ->
      let e = parse_expr st in
      let alias =
        if accept_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Token.Ident a when not (is_reserved a) ->
            advance st;
            Some a
          | _ -> None
      in
      Ast.Si_expr (e, alias)

and parse_table_primary st =
  if peek st = Token.Lparen then begin
    advance st;
    let q = parse_query st in
    expect st Token.Rparen;
    let _ = accept_kw st "AS" in
    Ast.Tr_subquery (q, ident st)
  end
  else begin
    let name = ident st in
    if is_reserved name then error st "unexpected keyword %s in FROM" name;
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Token.Ident a when not (is_reserved a) ->
          advance st;
          Some a
        | _ -> None
    in
    Ast.Tr_table (name, alias)
  end

and parse_table_ref st =
  let rec joins lhs =
    match kw_of st with
    | Some "JOIN" ->
      advance st;
      with_on lhs Ast.Inner
    | Some "INNER" ->
      advance st;
      expect_kw st "JOIN";
      with_on lhs Ast.Inner
    | Some "LEFT" ->
      advance st;
      let _ = accept_kw st "OUTER" in
      expect_kw st "JOIN";
      with_on lhs Ast.Left_outer
    | Some "CROSS" ->
      advance st;
      expect_kw st "JOIN";
      let rhs = parse_table_primary st in
      joins (Ast.Tr_join (lhs, Ast.Cross, rhs, None))
    | _ -> lhs
  and with_on lhs jt =
    let rhs = parse_table_primary st in
    expect_kw st "ON";
    let on = parse_expr st in
    joins (Ast.Tr_join (lhs, jt, rhs, Some on))
  in
  joins (parse_table_primary st)

(* ------------------------------------------------------------------ *)
(* WITH (common table expressions): parsed bindings are inlined at     *)
(* their use sites - each reference becomes a derived table, so the    *)
(* rest of the pipeline needs no new operator.                         *)
(* ------------------------------------------------------------------ *)

and subst_ctes_expr ctes (e : Ast.expr) : Ast.expr =
  let go = subst_ctes_expr ctes in
  match e with
  | Ast.E_null | Ast.E_bool _ | Ast.E_int _ | Ast.E_float _ | Ast.E_string _
  | Ast.E_date _ | Ast.E_interval _ | Ast.E_column _ ->
    e
  | Ast.E_binop (op, a, b) -> Ast.E_binop (op, go a, go b)
  | Ast.E_neg a -> Ast.E_neg (go a)
  | Ast.E_not a -> Ast.E_not (go a)
  | Ast.E_is_null (a, n) -> Ast.E_is_null (go a, n)
  | Ast.E_like (a, pat, n) -> Ast.E_like (go a, go pat, n)
  | Ast.E_between (a, lo, hi) -> Ast.E_between (go a, go lo, go hi)
  | Ast.E_in_list (a, items, n) -> Ast.E_in_list (go a, List.map go items, n)
  | Ast.E_in_query (a, q, n) -> Ast.E_in_query (go a, subst_ctes ctes q, n)
  | Ast.E_exists (q, n) -> Ast.E_exists (subst_ctes ctes q, n)
  | Ast.E_case (whens, els) ->
    Ast.E_case
      (List.map (fun (c, v) -> (go c, go v)) whens, Option.map go els)
  | Ast.E_func (f, args) -> Ast.E_func (f, List.map go args)
  | Ast.E_agg { func; arg; distinct } ->
    Ast.E_agg { func; arg = Option.map go arg; distinct }
  | Ast.E_subquery q -> Ast.E_subquery (subst_ctes ctes q)

and subst_ctes_tref ctes (tr : Ast.table_ref) : Ast.table_ref =
  match tr with
  | Ast.Tr_table (name, alias) -> (
    match
      List.find_opt
        (fun (n, _) ->
          String.lowercase_ascii n = String.lowercase_ascii name)
        ctes
    with
    | Some (_, q) -> Ast.Tr_subquery (q, Option.value alias ~default:name)
    | None -> tr)
  | Ast.Tr_subquery (q, alias) -> Ast.Tr_subquery (subst_ctes ctes q, alias)
  | Ast.Tr_join (l, jt, r, on) ->
    Ast.Tr_join
      ( subst_ctes_tref ctes l,
        jt,
        subst_ctes_tref ctes r,
        Option.map (subst_ctes_expr ctes) on )

and subst_ctes ctes (q : Ast.query) : Ast.query =
  if ctes = [] then q
  else
    {
      q with
      Ast.select =
        List.map
          (function
            | Ast.Si_expr (e, a) -> Ast.Si_expr (subst_ctes_expr ctes e, a)
            | item -> item)
          q.Ast.select;
      from = List.map (subst_ctes_tref ctes) q.Ast.from;
      where = Option.map (subst_ctes_expr ctes) q.Ast.where;
      group_by = List.map (subst_ctes_expr ctes) q.Ast.group_by;
      having = Option.map (subst_ctes_expr ctes) q.Ast.having;
      order_by =
        List.map (fun (e, d) -> (subst_ctes_expr ctes e, d)) q.Ast.order_by;
      set_ops =
        List.map (fun (op, sub) -> (op, subst_ctes ctes sub)) q.Ast.set_ops;
    }

and parse_query st : Ast.query =
  let ctes =
    if accept_kw st "WITH" then begin
      let rec bindings acc =
        let name = ident st in
        expect_kw st "AS";
        expect st Token.Lparen;
        let q = parse_query st in
        expect st Token.Rparen;
        (* Later CTEs may reference earlier ones: inline eagerly. *)
        let q = subst_ctes acc q in
        let acc = acc @ [ (name, q) ] in
        if peek st = Token.Comma then begin
          advance st;
          bindings acc
        end
        else acc
      in
      bindings []
    end
    else []
  in
  let q = parse_query_plain st in
  subst_ctes ctes q

and parse_query_plain st : Ast.query =
  let first = parse_query_core st in
  (* Trailing set operations are parsed flat at this level, giving SQL's
     left-associative grouping. *)
  let rec set_ops acc =
    match kw_of st with
    | Some "UNION" ->
      advance st;
      let op = if accept_kw st "ALL" then Ast.Union_all else Ast.Union in
      set_ops ((op, parse_query_core st) :: acc)
    | Some "EXCEPT" ->
      advance st;
      set_ops ((Ast.Except, parse_query_core st) :: acc)
    | Some "INTERSECT" ->
      advance st;
      set_ops ((Ast.Intersect, parse_query_core st) :: acc)
    | _ -> List.rev acc
  in
  { first with Ast.set_ops = set_ops [] }

and parse_query_core st : Ast.query =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let top = if accept_kw st "TOP" then Some (int_lit st) else None in
  let rec items acc =
    let it = parse_select_item st in
    if peek st = Token.Comma then begin
      advance st;
      items (it :: acc)
    end
    else List.rev (it :: acc)
  in
  let select = items [] in
  let from =
    if accept_kw st "FROM" then begin
      let rec refs acc =
        let r = parse_table_ref st in
        if peek st = Token.Comma then begin
          advance st;
          refs (r :: acc)
        end
        else List.rev (r :: acc)
      in
      refs []
    end
    else []
  in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec go acc =
        let e = parse_expr st in
        let dir =
          if accept_kw st "DESC" then Ast.Desc
          else begin
            let _ = accept_kw st "ASC" in
            Ast.Asc
          end
        in
        if peek st = Token.Comma then begin
          advance st;
          go ((e, dir) :: acc)
        end
        else List.rev ((e, dir) :: acc)
      in
      go []
    end
    else []
  in
  let limit = if accept_kw st "LIMIT" then Some (int_lit st) else None in
  { Ast.distinct; top; select; from; where; group_by; having; order_by;
    limit; set_ops = [] }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_column_def st =
  let col_name = ident st in
  let ty_name = ident st in
  let col_type =
    match Storage.Datatype.of_string ty_name with
    | Some t -> t
    | None -> error st "unknown type %s" ty_name
  in
  (* Swallow an optional length, e.g. VARCHAR(25). *)
  if peek st = Token.Lparen then begin
    advance st;
    let _ = int_lit st in
    (match peek st with
    | Token.Comma ->
      advance st;
      let _ = int_lit st in
      ()
    | _ -> ());
    expect st Token.Rparen
  end;
  let col_pk =
    if accept_kw st "PRIMARY" then begin
      expect_kw st "KEY";
      true
    end
    else false
  in
  let _ = accept_kw st "NOT" && (expect_kw st "NULL"; true) in
  { Ast.col_name; col_type; col_pk }

let rec parse_statement st : Ast.statement =
  match kw_of st with
  | Some "SELECT" | Some "WITH" -> Ast.S_select (parse_query st)
  | Some "EXPLAIN" ->
    advance st;
    let analyze = accept_kw st "ANALYZE" in
    let verify = (not analyze) && accept_kw st "VERIFY" in
    Ast.S_explain { analyze; verify; query = parse_query st }
  | Some "CREATE" -> parse_create st
  | Some "DROP" -> parse_drop st
  | Some "INSERT" ->
    advance st;
    expect_kw st "INTO";
    let table = ident st in
    let columns =
      if peek st = Token.Lparen then begin
        advance st;
        let rec cols acc =
          let c = ident st in
          if peek st = Token.Comma then begin
            advance st;
            cols (c :: acc)
          end
          else List.rev (c :: acc)
        in
        let cs = cols [] in
        expect st Token.Rparen;
        Some cs
      end
      else None
    in
    let source =
      if accept_kw st "VALUES" then begin
        let rec rows acc =
          expect st Token.Lparen;
          let vs = parse_expr_list st in
          expect st Token.Rparen;
          if peek st = Token.Comma then begin
            advance st;
            rows (vs :: acc)
          end
          else List.rev (vs :: acc)
        in
        Ast.Ins_values (rows [])
      end
      else Ast.Ins_query (parse_query st)
    in
    Ast.S_insert { table; columns; source }
  | Some "UPDATE" ->
    advance st;
    let table = ident st in
    expect_kw st "SET";
    let rec sets acc =
      let c = ident st in
      expect st Token.Eq;
      let e = parse_expr st in
      if peek st = Token.Comma then begin
        advance st;
        sets ((c, e) :: acc)
      end
      else List.rev ((c, e) :: acc)
    in
    let sets = sets [] in
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Ast.S_update { table; sets; where }
  | Some "DELETE" ->
    advance st;
    expect_kw st "FROM";
    let table = ident st in
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Ast.S_delete { table; where }
  | Some "IF" ->
    advance st;
    expect st Token.Lparen;
    let cond = parse_expr st in
    expect st Token.Rparen;
    let body = parse_trigger_body st in
    Ast.S_if (cond, body)
  | Some "NOTIFY" ->
    advance st;
    Ast.S_notify (string_lit st)
  | Some "DENY" ->
    advance st;
    Ast.S_deny (string_lit st)
  | Some k -> error st "unexpected keyword %s at start of statement" k
  | None -> error st "expected a statement, found %s" (Token.to_string (peek st))

and parse_create st =
  expect_kw st "CREATE";
  match kw_of st with
  | Some "TABLE" ->
    advance st;
    let table = ident st in
    expect st Token.Lparen;
    let rec cols acc =
      let c = parse_column_def st in
      if peek st = Token.Comma then begin
        advance st;
        cols (c :: acc)
      end
      else List.rev (c :: acc)
    in
    let columns = cols [] in
    expect st Token.Rparen;
    Ast.S_create_table { table; columns }
  | Some "INDEX" ->
    advance st;
    let index_name = ident st in
    expect_kw st "ON";
    let table = ident st in
    expect st Token.Lparen;
    let column = ident st in
    expect st Token.Rparen;
    Ast.S_create_index { index_name; table; column }
  | Some "AUDIT" ->
    advance st;
    expect_kw st "EXPRESSION";
    let audit_name = ident st in
    expect_kw st "AS";
    let definition = parse_query st in
    expect_kw st "FOR";
    expect_kw st "SENSITIVE";
    expect_kw st "TABLE";
    let sensitive_table = ident st in
    let _ = peek st = Token.Comma && (advance st; true) in
    expect_kw st "PARTITION";
    expect_kw st "BY";
    let partition_by = ident st in
    Ast.S_create_audit { audit_name; definition; sensitive_table; partition_by }
  | Some "TRIGGER" ->
    advance st;
    let trigger_name = ident st in
    expect_kw st "ON";
    let event =
      if accept_kw st "ACCESS" then begin
        expect_kw st "TO";
        Ast.On_access (ident st)
      end
      else begin
        let table = ident st in
        expect_kw st "AFTER";
        let ev =
          match kw_of st with
          | Some "INSERT" ->
            advance st;
            Ast.Ev_insert
          | Some "UPDATE" ->
            advance st;
            Ast.Ev_update
          | Some "DELETE" ->
            advance st;
            Ast.Ev_delete
          | _ -> error st "expected INSERT, UPDATE or DELETE after AFTER"
        in
        Ast.On_dml (table, ev)
      end
    in
    let timing =
      if accept_kw st "BEFORE" then begin
        expect_kw st "RETURN";
        Ast.Before_return
      end
      else Ast.After
    in
    expect_kw st "AS";
    let body = parse_trigger_body st in
    Ast.S_create_trigger { trigger_name; event; timing; body }
  | _ -> error st "expected TABLE, INDEX, AUDIT or TRIGGER after CREATE"

and parse_drop st =
  expect_kw st "DROP";
  match kw_of st with
  | Some "TABLE" ->
    advance st;
    Ast.S_drop_table (ident st)
  | Some "INDEX" ->
    advance st;
    let index_name = ident st in
    expect_kw st "ON";
    let table = ident st in
    Ast.S_drop_index { index_name; table }
  | Some "AUDIT" ->
    advance st;
    expect_kw st "EXPRESSION";
    Ast.S_drop_audit (ident st)
  | Some "TRIGGER" ->
    advance st;
    Ast.S_drop_trigger (ident st)
  | _ -> error st "expected TABLE, INDEX, AUDIT or TRIGGER after DROP"

and parse_trigger_body st : Ast.statement list =
  if accept_kw st "BEGIN" then begin
    let rec go acc =
      if accept_kw st "END" then List.rev acc
      else begin
        let s = parse_statement st in
        let _ = peek st = Token.Semicolon && (advance st; true) in
        go (s :: acc)
      end
    in
    go []
  end
  else [ parse_statement st ]

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let make_state src = { toks = Array.of_list (Lexer.tokenize src); pos = 0 }

(** Parse a single statement; trailing semicolon allowed. *)
let statement src =
  let st = make_state src in
  let s = parse_statement st in
  let _ = peek st = Token.Semicolon && (advance st; true) in
  if peek st <> Token.Eof then
    error st "trailing input after statement: %s" (Token.to_string (peek st));
  s

(** Parse a script of ';'-separated statements. *)
let script src =
  let st = make_state src in
  let rec go acc =
    if peek st = Token.Eof then List.rev acc
    else if peek st = Token.Semicolon then begin
      advance st;
      go acc
    end
    else go (parse_statement st :: acc)
  in
  go []

(** Parse a single SELECT query. *)
let query src =
  match statement src with
  | Ast.S_select q -> q
  | _ -> raise (Parse_error ("expected a SELECT query", 0))

(** Parse a single scalar/boolean expression (used in tests). *)
let expression src =
  let st = make_state src in
  let e = parse_expr st in
  if peek st <> Token.Eof then
    error st "trailing input after expression: %s" (Token.to_string (peek st));
  e
