(** Durable, append-only audit log with checksummed record framing.

    File layout: 8-byte magic, then frames of
    [u32 length | u32 crc32(payload) | payload] (big-endian). {!open_}
    recovers: intact records are kept, the torn tail after a crash is
    truncated. {!append} is failure-atomic (the log is healed back to the
    pre-append size on a failed write). All failures raise
    [Engine_core.Engine_error.Error (Log_io _)] — the policy layer in
    [Db.Database] decides fail-closed vs fail-open. *)

open Engine_core

type record =
  | Accessed of {
      seq : int;  (** logical clock of the statement *)
      user : string;
      sql : string;  (** outermost statement text *)
      audit : string;  (** audit expression name *)
      ids : string list;  (** accessed sensitive IDs (rendered values) *)
      complete : bool;
          (** false when flushed on abort/cancellation (partial set) *)
    }
  | Trigger_fired of {
      seq : int;
      trigger : string;
      audit : string;
      timing : string;
    }
  | Notify of { seq : int; msg : string }
  | Note of string  (** engine annotations: alarms, recovery notes *)

val record_to_string : record -> string

type recovery = {
  valid_records : int;  (** intact records in the recovered prefix *)
  valid_bytes : int;  (** file size after truncating the torn tail *)
  truncated_bytes : int;  (** torn/corrupt bytes dropped from the tail *)
  corrupt : bool;
      (** the tail failed its checksum (vs a clean short tail) *)
}

type policy =
  | Fail_closed
      (** a failed log write withholds the query's results (default) *)
  | Fail_open  (** a failed log write raises an alarm but results flow *)

val policy_to_string : policy -> string

type t

(** Open (creating if needed) with recovery: truncates the torn tail and
    positions the handle for append. *)
val open_ : ?policy:policy -> ?faults:Faultkit.t -> string -> t * recovery

(** Append one record (call {!sync} before releasing query results).
    Failure-atomic; consults the fault kit's [Log_io] points. *)
val append : t -> record -> unit

(** Flush appended records to stable storage (fsync). *)
val sync : t -> unit

val close : t -> unit
val path : t -> string
val policy : t -> policy
val set_policy : t -> policy -> unit

(** Records appended through this handle (excluding recovered ones). *)
val appended : t -> int

(** False once the handle died (failed heal or simulated crash). *)
val is_open : t -> bool

(** Read and validate a log without opening it for append: the intact
    records and the recovery report. Missing file = empty log. *)
val read_all : string -> record list * recovery

(** CRC32 (IEEE) of a string — exposed for integrity checks in tests. *)
val crc32 : string -> int
