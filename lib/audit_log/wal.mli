(** Durable, append-only audit log with checksummed record framing.

    File layout: 8-byte magic, then frames of
    [u32 length | u32 crc32(payload) | payload] (big-endian). {!open_}
    recovers: intact records are kept, the torn tail after a crash is
    truncated. {!append} is failure-atomic (the log is healed back to the
    pre-append size on a failed write). All failures raise
    [Engine_core.Engine_error.Error (Log_io _)] — the policy layer in
    [Db.Database] decides fail-closed vs fail-open.

    Opened with [~max_segment_size], the log is {e segmented}: a sequence
    of files [base.NNNN.wal] plus a CRC-framed manifest [base.manifest]
    holding one fsynced {!record.Checkpoint} per sealed segment. Rotation
    is size-based inside {!append}; recovery reads only the manifest and
    the tail segment (bounded, O(segment size)); ENOSPC rotates-or-poisons
    per the policy instead of healing forever. *)

open Engine_core

type record =
  | Accessed of {
      session : int;  (** originating session (0 = single-session engine) *)
      seq : int;  (** logical clock of the statement *)
      user : string;
      sql : string;  (** outermost statement text *)
      audit : string;  (** audit expression name *)
      ids : string list;  (** accessed sensitive IDs (rendered values) *)
      complete : bool;
          (** false when flushed on abort/cancellation (partial set) *)
    }
  | Trigger_fired of {
      session : int;
      seq : int;
      trigger : string;
      audit : string;
      timing : string;
    }
  | Notify of { session : int; seq : int; msg : string }
  | Note of string  (** engine annotations: alarms, recovery notes *)
  | Checkpoint of { segment : int; records : int; bytes : int }
      (** manifest-only: segment [segment] is sealed and fully fsynced
          with [records] intact records in [bytes] bytes *)

val record_to_string : record -> string

(** The originating session of an evidence record ([None] for notes). *)
val record_session : record -> int option

type recovery = {
  valid_records : int;  (** intact records in the recovered prefix *)
  valid_bytes : int;  (** file size after truncating the torn tail *)
  truncated_bytes : int;  (** torn/corrupt bytes dropped from the tail *)
  corrupt : bool;
      (** the tail failed its checksum (vs a clean short tail) *)
  segments : int;  (** segment files covered (1 for a single-file log) *)
  tail_segment : int;  (** index of the active (scanned) segment *)
  scanned_bytes : int;
      (** bytes actually read during recovery — manifest + tail only for
          a segmented log, the whole file otherwise *)
}

type policy =
  | Fail_closed
      (** a failed log write withholds the query's results (default) *)
  | Fail_open  (** a failed log write raises an alarm but results flow *)

val policy_to_string : policy -> string

type t

(** Open (creating if needed) with recovery: truncates the torn tail and
    positions the handle for append. With [~max_segment_size] (or when
    [path ^ ".manifest"] already exists) the log is segmented and
    recovery is bounded to the manifest + tail segment. *)
val open_ :
  ?policy:policy ->
  ?faults:Faultkit.t ->
  ?max_segment_size:int ->
  string ->
  t * recovery

(** Default segment-rotation threshold (4 MiB). *)
val default_segment_size : int

(** Path of segment [i] of a segmented log rooted at the base path
    ([audit.wal] -> [audit.0007.wal]). *)
val segment_path : string -> int -> string

(** Manifest path of a segmented log rooted at the base path. *)
val manifest_path : string -> string

(** Append one record (call {!sync} before releasing query results).
    Failure-atomic; consults the fault kit's [Log_io] points. *)
val append : t -> record -> unit

(** Flush appended records to stable storage (fsync). *)
val sync : t -> unit

val close : t -> unit
val path : t -> string
val policy : t -> policy
val set_policy : t -> policy -> unit

(** Records appended through this handle (excluding recovered ones). *)
val appended : t -> int

(** Fsyncs issued through this handle. *)
val syncs : t -> int

(** False once the handle died (failed heal or simulated crash). *)
val is_open : t -> bool

(** True when the handle writes a segmented log. *)
val is_segmented : t -> bool

(** Segment files so far (1 for a single-file log). *)
val segments : t -> int

(** Rotations performed through this handle. *)
val rotations : t -> int

(** Index of the active segment (0 for a single-file log). *)
val tail_segment : t -> int

(** Read and validate a log without opening it for append: the intact
    records and the recovery report. Missing file = empty log. *)
val read_all : string -> record list * recovery

(** CRC32 (IEEE) of a string — exposed for integrity checks in tests. *)
val crc32 : string -> int

type wal = t
(** alias usable inside {!Group}, where [t] names the group writer *)

(** Group commit: a shared writer that batches concurrent sessions'
    records into one fsync (leader/follower). {!Group.submit} blocks until
    the caller's records are covered by a completed group fsync, so the
    evidence-before-results invariant carries over to the served engine. A
    failed batch poisons the writer: every waiter and later submit raises
    [Engine_error.Error (Log_io _)]; on-disk recovery is the normal
    torn-tail scan. Safe for use from multiple systhreads. *)
module Group : sig
  type t

  type stats = {
    s_submits : int;  (** submit calls that carried records *)
    s_records : int;  (** records enqueued over the writer's lifetime *)
    s_batches : int;  (** completed group flushes *)
    s_fsyncs : int;  (** fsyncs on the underlying log *)
    s_max_batch : int;  (** largest single-fsync batch, in records *)
  }

  (** Wrap an open log. [max_pending] caps queued-but-not-durable records;
      submits block above it (backpressure). The group writer owns every
      append/fsync on the log from then on. *)
  val create : ?max_pending:int -> wal -> t

  val wal : t -> wal

  (** Append the records and block until a group fsync covers them. An
      empty list returns immediately. *)
  val submit : t -> record list -> unit

  (** Records enqueued but not yet durable. *)
  val pending : t -> int

  (** Hold flushes so submits park in one growing batch — a deterministic
      way for tests to force K sessions into a single fsync. *)
  val pause : t -> unit

  val resume : t -> unit

  (** Flush everything queued without closing. *)
  val drain : t -> unit

  (** Drain, then close the writer and the underlying log. *)
  val close : t -> unit

  val stats : t -> stats
end
