(** Durable, append-only audit log (write-ahead style).

    File layout: an 8-byte magic ["AUDWAL01"] followed by framed records.
    Each frame is [u32 length | u32 crc32(payload) | payload], integers
    big-endian; the payload is a tag-based binary encoding of {!record}.

    Recovery on open scans the file front to back: every frame whose
    length and checksum verify is intact; the first short or corrupt frame
    ends the valid prefix, and the file is truncated there (a torn tail is
    the expected shape after a crash mid-write — later bytes are
    unverifiable and must not masquerade as audit evidence). Intact
    records are never dropped.

    Appends are failure-atomic: the pre-append size is remembered and the
    file is truncated back to it if the write fails midway, so a failed
    append leaves the log exactly as it was. If the heal itself fails the
    handle is marked dead and every later operation raises — the policy
    layer in [Db.Database] then decides fail-closed vs fail-open.

    Fault injection ({!Engine_core.Faultkit.Log_io}) is consulted per
    append: short writes and ENOSPC heal (exercising failure-atomicity),
    [Crash_before_sync] leaves a torn tail and kills the handle
    (exercising recovery).

    {b Segmented mode.} A log opened with [~max_segment_size] (or whose
    manifest already exists on disk) is a sequence of segment files
    [base.NNNN.wal] plus a manifest [base.manifest]. The manifest is
    itself a tiny CRC-framed log of {!record.Checkpoint} records: one per
    {e sealed} segment, appended and fsynced at rotation time, after the
    segment's last byte is durable. Rotation is size-based and happens
    inside {!append}, under whatever serialization the caller already
    provides (the group-commit leader, in the served engine). Recovery is
    {e bounded}: sealed segments are trusted via their checkpoint and
    never rescanned — open-time recovery reads only the manifest and the
    tail segment, so recovery cost is O(max_segment_size) no matter how
    large the audit trail has grown. ENOSPC degrades gracefully: the
    writer first tries to rotate into a fresh segment and retry once;
    if that also fails, the handle is poisoned (fail-closed) or healed
    for a later attempt (fail-open) instead of healing forever. *)

open Engine_core

let magic = "AUDWAL01"
let frame_header_len = 8
let default_segment_size = 4 * 1024 * 1024

(* Segment naming per the on-disk contract: base [audit.wal] yields
   segments [audit.0000.wal], [audit.0001.wal], ... and the manifest
   [audit.wal.manifest]. A base without the .wal suffix gets plain
   numeric suffixes. *)
let segment_path base i =
  if Filename.check_suffix base ".wal" then
    Printf.sprintf "%s.%04d.wal" (Filename.chop_suffix base ".wal") i
  else Printf.sprintf "%s.%04d" base i

let manifest_path base = base ^ ".manifest"

let log_io msg = Engine_error.raise_ (Engine_error.Log_io msg)

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, table-driven)                                    *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 (s : string) : int =
  let t = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

type record =
  | Accessed of {
      session : int;  (** originating session (0 = single-session engine) *)
      seq : int;  (** logical clock of the statement *)
      user : string;
      sql : string;  (** outermost statement text *)
      audit : string;  (** audit expression name *)
      ids : string list;  (** accessed sensitive IDs (rendered values) *)
      complete : bool;
          (** false when flushed on abort/cancellation: the set covers the
              accesses up to the failure point *)
    }
  | Trigger_fired of {
      session : int;
      seq : int;
      trigger : string;
      audit : string;
      timing : string;  (** "AFTER" | "BEFORE RETURN" *)
    }
  | Notify of { session : int; seq : int; msg : string }
  | Note of string  (** engine annotations: alarms, recovery notes *)
  | Checkpoint of { segment : int; records : int; bytes : int }
      (** manifest-only: segment [segment] is sealed, fully fsynced, with
          [records] intact records in [bytes] bytes *)

let record_to_string = function
  | Accessed { session; seq; user; sql; audit; ids; complete } ->
    Printf.sprintf "accessed session=%d seq=%d user=%s audit=%s ids=[%s]%s sql=%S"
      session seq user audit (String.concat "," ids)
      (if complete then "" else " (partial)")
      sql
  | Trigger_fired { session; seq; trigger; audit; timing } ->
    Printf.sprintf "trigger session=%d seq=%d name=%s audit=%s timing=%s"
      session seq trigger audit timing
  | Notify { session; seq; msg } ->
    Printf.sprintf "notify session=%d seq=%d msg=%S" session seq msg
  | Note msg -> Printf.sprintf "note %S" msg
  | Checkpoint { segment; records; bytes } ->
    Printf.sprintf "checkpoint segment=%04d records=%d bytes=%d" segment
      records bytes

let record_session = function
  | Accessed { session; _ } | Trigger_fired { session; _ }
  | Notify { session; _ } ->
    Some session
  | Note _ | Checkpoint _ -> None

(* Binary payload codec. *)

exception Decode_error

let put_u32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let get_u32 s pos =
  if !pos + 4 > String.length s then raise Decode_error;
  let byte i = Char.code s.[!pos + i] in
  let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  pos := !pos + 4;
  n

let get_str s pos =
  let n = get_u32 s pos in
  if !pos + n > String.length s then raise Decode_error;
  let r = String.sub s !pos n in
  pos := !pos + n;
  r

let encode (r : record) : string =
  let b = Buffer.create 64 in
  (match r with
  | Accessed { session; seq; user; sql; audit; ids; complete } ->
    Buffer.add_char b '\001';
    put_u32 b session;
    put_u32 b seq;
    put_str b user;
    put_str b sql;
    put_str b audit;
    put_u32 b (List.length ids);
    List.iter (put_str b) ids;
    Buffer.add_char b (if complete then '\001' else '\000')
  | Trigger_fired { session; seq; trigger; audit; timing } ->
    Buffer.add_char b '\002';
    put_u32 b session;
    put_u32 b seq;
    put_str b trigger;
    put_str b audit;
    put_str b timing
  | Notify { session; seq; msg } ->
    Buffer.add_char b '\003';
    put_u32 b session;
    put_u32 b seq;
    put_str b msg
  | Note msg ->
    Buffer.add_char b '\004';
    put_str b msg
  | Checkpoint { segment; records; bytes } ->
    Buffer.add_char b '\005';
    put_u32 b segment;
    put_u32 b records;
    put_u32 b bytes);
  Buffer.contents b

let decode (payload : string) : record =
  if payload = "" then raise Decode_error;
  let pos = ref 1 in
  match payload.[0] with
  | '\001' ->
    let session = get_u32 payload pos in
    let seq = get_u32 payload pos in
    let user = get_str payload pos in
    let sql = get_str payload pos in
    let audit = get_str payload pos in
    let n = get_u32 payload pos in
    let ids = List.init n (fun _ -> get_str payload pos) in
    if !pos + 1 > String.length payload then raise Decode_error;
    let complete = payload.[!pos] = '\001' in
    Accessed { session; seq; user; sql; audit; ids; complete }
  | '\002' ->
    let session = get_u32 payload pos in
    let seq = get_u32 payload pos in
    let trigger = get_str payload pos in
    let audit = get_str payload pos in
    let timing = get_str payload pos in
    Trigger_fired { session; seq; trigger; audit; timing }
  | '\003' ->
    let session = get_u32 payload pos in
    let seq = get_u32 payload pos in
    let msg = get_str payload pos in
    Notify { session; seq; msg }
  | '\004' -> Note (get_str payload pos)
  | '\005' ->
    let segment = get_u32 payload pos in
    let records = get_u32 payload pos in
    let bytes = get_u32 payload pos in
    Checkpoint { segment; records; bytes }
  | _ -> raise Decode_error

let frame (r : record) : string =
  let payload = encode r in
  let b = Buffer.create (String.length payload + frame_header_len) in
  put_u32 b (String.length payload);
  put_u32 b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Recovery scan                                                       *)
(* ------------------------------------------------------------------ *)

type recovery = {
  valid_records : int;  (** intact records in the recovered prefix *)
  valid_bytes : int;  (** file size after truncating the torn tail *)
  truncated_bytes : int;  (** torn/corrupt bytes dropped from the tail *)
  corrupt : bool;
      (** true when the tail failed its checksum (vs a clean short tail) *)
  segments : int;  (** segment files covered (1 for a single-file log) *)
  tail_segment : int;  (** index of the active (scanned) segment *)
  scanned_bytes : int;
      (** bytes actually read during recovery: the whole file for a
          single-file log, manifest + tail segment only for a segmented
          one — the quantity bounded recovery keeps flat *)
}

let no_recovery =
  {
    valid_records = 0;
    valid_bytes = 0;
    truncated_bytes = 0;
    corrupt = false;
    segments = 1;
    tail_segment = 0;
    scanned_bytes = 0;
  }

(** Scan [contents], returning the intact records and the recovery
    report. Never raises: an unreadable byte ends the valid prefix. *)
let scan (contents : string) : record list * recovery =
  let len = String.length contents in
  if len < String.length magic || String.sub contents 0 (String.length magic) <> magic
  then
    (* Missing or bad magic: nothing trustworthy in this file. *)
    ( [],
      {
        no_recovery with
        valid_bytes = String.length magic;
        truncated_bytes = len;
        corrupt = len > 0;
        scanned_bytes = len;
      } )
  else begin
    let records = ref [] in
    let pos = ref (String.length magic) in
    let corrupt = ref false in
    (try
       while !pos < len do
         let at = ref !pos in
         if !at + frame_header_len > len then raise Exit;
         let plen = get_u32 contents at in
         let crc = get_u32 contents at in
         if !at + plen > len then raise Exit;
         let payload = String.sub contents !at plen in
         if crc32 payload <> crc then begin
           corrupt := true;
           raise Exit
         end;
         (match decode payload with
         | r -> records := r :: !records
         | exception Decode_error ->
           corrupt := true;
           raise Exit);
         pos := !at + plen
       done
     with Exit -> ());
    ( List.rev !records,
      {
        no_recovery with
        valid_records = List.length !records;
        valid_bytes = !pos;
        truncated_bytes = len - !pos;
        corrupt = !corrupt;
        scanned_bytes = len;
      } )
  end

let read_file path : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Sealed-segment checkpoints from a manifest, oldest first:
   (segment index, records, bytes) triples. *)
let manifest_checkpoints mpath : (int * int * int) list * recovery =
  if not (Sys.file_exists mpath) then ([], no_recovery)
  else
    let records, r = scan (read_file mpath) in
    ( List.filter_map
        (function
          | Checkpoint { segment; records; bytes } ->
            Some (segment, records, bytes)
          | _ -> None)
        records,
      r )

(** Read and validate a log without opening it for append. A segmented
    log (manifest present at [path ^ ".manifest"]) is read in full —
    every sealed segment plus the tail — so offline audits ([walcheck])
    always cover the complete history. Sealed segments were durable
    before their checkpoint: any shortfall there is corruption, whereas
    a short tail segment is the normal post-crash shape. *)
let read_all path : record list * recovery =
  let mpath = manifest_path path in
  if Sys.file_exists mpath then begin
    let cks, mr = manifest_checkpoints mpath in
    let tail_index =
      List.fold_left (fun acc (s, _, _) -> max acc (s + 1)) 0 cks
    in
    let corrupt = ref mr.corrupt in
    let scanned = ref mr.scanned_bytes in
    let read_segment ~sealed (seg, expected) =
      let p = segment_path path seg in
      if not (Sys.file_exists p) then begin
        if sealed then corrupt := true;
        ([], no_recovery)
      end
      else begin
        let records, r = scan (read_file p) in
        scanned := !scanned + r.scanned_bytes;
        if
          sealed
          && (r.corrupt || r.truncated_bytes > 0 || r.valid_records < expected)
        then corrupt := true;
        (records, r)
      end
    in
    let sealed = List.map (fun (s, n, _) -> read_segment ~sealed:true (s, n)) cks in
    let tail_records, tr = read_segment ~sealed:false (tail_index, 0) in
    let records = List.concat_map fst sealed @ tail_records in
    ( records,
      {
        valid_records = List.length records;
        valid_bytes =
          List.fold_left (fun a (_, r) -> a + r.valid_bytes) tr.valid_bytes
            sealed;
        truncated_bytes = tr.truncated_bytes;
        corrupt = !corrupt || tr.corrupt;
        segments = tail_index + 1;
        tail_segment = tail_index;
        scanned_bytes = !scanned;
      } )
  end
  else if Sys.file_exists path then scan (read_file path)
  else ([], no_recovery)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type policy =
  | Fail_closed
      (** a failed log write withholds the query's results (default:
          preserves the no-false-negatives guarantee) *)
  | Fail_open  (** a failed log write raises an alarm but results flow *)

let policy_to_string = function
  | Fail_closed -> "fail-closed"
  | Fail_open -> "fail-open"

type segmented = {
  max_bytes : int;  (** size-based rotation threshold for a segment *)
  mutable seg_index : int;  (** index of the active segment *)
  mutable seg_records : int;  (** records in the active segment *)
  mutable sealed_records : int;  (** records in sealed segments *)
  mutable manifest : Unix.file_descr option;
  mutable rotations : int;  (** rotations performed through this handle *)
}

type t = {
  path : string;  (** base path; segments and manifest derive from it *)
  mutable fd : Unix.file_descr option;  (** [None] = dead handle *)
  mutable policy : policy;
  mutable size : int;
      (** bytes of validated + successfully appended data in the active
          file (the only segment of a single-file log) *)
  mutable appended : int;  (** records appended through this handle *)
  mutable syncs : int;  (** fsyncs issued through this handle *)
  mutable dirty : bool;  (** appended since the last fsync *)
  faults : Faultkit.t option;
  seg : segmented option;  (** [None] = single-file (legacy) layout *)
}

let path t = t.path
let policy t = t.policy
let set_policy t p = t.policy <- p
let appended t = t.appended
let syncs t = t.syncs
let is_open t = t.fd <> None
let is_segmented t = t.seg <> None
let segments t = match t.seg with Some s -> s.seg_index + 1 | None -> 1
let rotations t = match t.seg with Some s -> s.rotations | None -> 0
let tail_segment t = match t.seg with Some s -> s.seg_index | None -> 0

let fd_exn t =
  match t.fd with
  | Some fd -> fd
  | None -> log_io (Printf.sprintf "audit log %s: handle is dead" t.path)

(* Open (create or recover) one plain log file positioned for append:
   intact records kept, torn tail truncated, magic laid down when fresh. *)
let open_file path : Unix.file_descr * recovery =
  let exists = Sys.file_exists path in
  let contents = if exists then read_file path else "" in
  let recovery =
    if contents = "" then { no_recovery with valid_bytes = String.length magic }
    else snd (scan contents)
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  if (not exists) || contents = "" then begin
    let n = Unix.write_substring fd magic 0 (String.length magic) in
    if n <> String.length magic then failwith "short write of magic"
  end
  else Unix.ftruncate fd recovery.valid_bytes;
  ignore (Unix.lseek fd recovery.valid_bytes Unix.SEEK_SET);
  Unix.fsync fd;
  (fd, recovery)

(** Open (creating if needed) with recovery: intact records are kept, the
    torn tail is truncated, and the handle is positioned for append.

    With [~max_segment_size] (or when [path ^ ".manifest"] already
    exists) the log is segmented and recovery is {e bounded}: sealed
    segments are trusted through their fsynced manifest checkpoints, so
    only the manifest and the tail segment are read — O(segment size),
    however large the trail. A crash during rotation leaves either an
    unsealed full segment (it becomes the scanned tail) or a sealed
    segment with no successor file yet (a fresh tail is created); both
    recover without scanning history. *)
let open_ ?(policy = Fail_closed) ?faults ?max_segment_size path : t * recovery
    =
  let mpath = manifest_path path in
  let segmented = max_segment_size <> None || Sys.file_exists mpath in
  match
    if not segmented then begin
      let fd, recovery = open_file path in
      (fd, recovery.valid_bytes, recovery, None)
    end
    else begin
      let mcontent = if Sys.file_exists mpath then read_file mpath else "" in
      let cks, mr =
        if mcontent = "" then
          ([], { no_recovery with valid_bytes = String.length magic })
        else
          let records, r = scan mcontent in
          ( List.filter_map
              (function
                | Checkpoint { segment; records; bytes } ->
                  Some (segment, records, bytes)
                | _ -> None)
              records,
            r )
      in
      let mfd = Unix.openfile mpath [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      if mcontent = "" then begin
        let n = Unix.write_substring mfd magic 0 (String.length magic) in
        if n <> String.length magic then failwith "short write of magic"
      end
      else Unix.ftruncate mfd mr.valid_bytes;
      ignore (Unix.lseek mfd mr.valid_bytes Unix.SEEK_SET);
      Unix.fsync mfd;
      let tail_index =
        List.fold_left (fun acc (s, _, _) -> max acc (s + 1)) 0 cks
      in
      let sealed_records =
        List.fold_left (fun acc (_, n, _) -> acc + n) 0 cks
      in
      let sealed_bytes = List.fold_left (fun acc (_, _, b) -> acc + b) 0 cks in
      let fd, tr = open_file (segment_path path tail_index) in
      let seg =
        {
          max_bytes =
            Option.value max_segment_size ~default:default_segment_size;
          seg_index = tail_index;
          seg_records = tr.valid_records;
          sealed_records;
          manifest = Some mfd;
          rotations = 0;
        }
      in
      ( fd,
        tr.valid_bytes,
        {
          valid_records = sealed_records + tr.valid_records;
          valid_bytes = sealed_bytes + tr.valid_bytes;
          truncated_bytes = tr.truncated_bytes;
          corrupt = tr.corrupt || mr.corrupt;
          segments = tail_index + 1;
          tail_segment = tail_index;
          scanned_bytes = String.length mcontent + tr.scanned_bytes;
        },
        Some seg )
    end
  with
  | fd, active_size, recovery, seg ->
    ( {
        path;
        fd = Some fd;
        policy;
        size = active_size;
        appended = 0;
        syncs = 0;
        dirty = false;
        faults;
        seg;
      },
      recovery )
  | exception (Unix.Unix_error _ | Failure _ | Sys_error _) ->
    log_io (Printf.sprintf "cannot open audit log %s" path)

let write_all fd bytes off len =
  let off = ref off and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write_substring fd bytes !off !remaining in
    if n <= 0 then raise (Unix.Unix_error (Unix.EIO, "write", ""));
    off := !off + n;
    remaining := !remaining - n
  done

(** Truncate back to the pre-append size; on failure the handle dies. *)
let heal t =
  match t.fd with
  | None -> ()
  | Some fd -> (
    try
      Unix.ftruncate fd t.size;
      ignore (Unix.lseek fd t.size Unix.SEEK_SET)
    with Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.fd <- None)

let kill t =
  (match t.seg with
  | Some ({ manifest = Some mfd; _ } as s) ->
    (try Unix.close mfd with Unix.Unix_error _ -> ());
    s.manifest <- None
  | _ -> ());
  match t.fd with
  | None -> ()
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.fd <- None

(** Seal the active segment and open the next one. Ordering is the
    durability contract bounded recovery relies on: (1) fsync the active
    segment so every byte the checkpoint will vouch for is stable,
    (2) append + fsync the {!record.Checkpoint} to the manifest,
    (3) create the successor segment (magic + fsync). A crash between
    (1) and (2) leaves an unsealed full segment — it is simply the tail
    at recovery; a crash between (2) and (3) leaves a sealed segment with
    no successor — recovery creates a fresh tail. Raises on I/O failure
    (Unix errors propagate; the caller decides kill vs heal). *)
let rotate t =
  match t.seg with
  | None -> ()
  | Some s ->
    let fd = fd_exn t in
    let mfd =
      match s.manifest with
      | Some mfd -> mfd
      | None ->
        log_io (Printf.sprintf "audit log %s: manifest handle is dead" t.path)
    in
    if t.dirty then begin
      Unix.fsync fd;
      t.dirty <- false;
      t.syncs <- t.syncs + 1
    end;
    let ck =
      frame
        (Checkpoint
           { segment = s.seg_index; records = s.seg_records; bytes = t.size })
    in
    write_all mfd ck 0 (String.length ck);
    Unix.fsync mfd;
    let next = s.seg_index + 1 in
    let nfd =
      Unix.openfile (segment_path t.path next)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        0o644
    in
    write_all nfd magic 0 (String.length magic);
    Unix.fsync nfd;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.fd <- Some nfd;
    s.sealed_records <- s.sealed_records + s.seg_records;
    s.seg_index <- next;
    s.seg_records <- 0;
    s.rotations <- s.rotations + 1;
    t.size <- String.length magic

(* ENOSPC on a segmented log: rotate into a fresh segment and retry the
   frame once, instead of healing forever against a full segment. If the
   rotation or the retried write also fails, stop degrading gracefully —
   fail-closed poisons the handle (every later operation raises, queries
   are withheld), fail-open heals it for a later attempt. Single-file
   logs keep the legacy heal-and-raise behaviour (handled by the caller
   before reaching here). *)
let enospc_retry t bytes len msg =
  match
    rotate t;
    write_all (fd_exn t) bytes 0 len
  with
  | () ->
    t.size <- t.size + len;
    t.appended <- t.appended + 1;
    t.dirty <- true;
    (match t.seg with
    | Some s -> s.seg_records <- s.seg_records + 1
    | None -> ())
  | exception (Unix.Unix_error _ | Engine_error.Error _ | Failure _) ->
    (match t.policy with Fail_closed -> kill t | Fail_open -> heal t);
    log_io
      (Printf.sprintf "audit log %s: %s; rotation retry failed (%s)" t.path
         msg
         (policy_to_string t.policy))

(** Append one record (no fsync — call {!sync} before releasing results).
    Failure-atomic: on error the log is either exactly as before the call
    or (after a simulated crash) carries a torn tail that {!open_} will
    truncate. Raises [Engine_error.Error (Log_io _)] on any failure. *)
let append t (r : record) : unit =
  let fd = fd_exn t in
  let bytes = frame r in
  let len = String.length bytes in
  let injected =
    match t.faults with None -> None | Some k -> Faultkit.on_log_append k
  in
  match injected with
  | Some (Faultkit.Short_write n) ->
    (* Write a torn prefix, then heal — exercising failure-atomicity. *)
    (try write_all fd bytes 0 (min n len) with Unix.Unix_error _ -> ());
    heal t;
    log_io
      (Printf.sprintf "audit log %s: injected short write (%d/%d bytes)"
         t.path (min n len) len)
  | Some Faultkit.Enospc ->
    if t.seg = None then
      log_io (Printf.sprintf "audit log %s: injected ENOSPC" t.path)
    else enospc_retry t bytes len "injected ENOSPC"
  | Some Faultkit.Crash_before_sync ->
    (* Half a frame hits the disk, then the "process" dies: the torn tail
       stays for recovery to truncate, and the handle is unusable. *)
    (try write_all fd bytes 0 (max 1 (len / 2)) with Unix.Unix_error _ -> ());
    kill t;
    log_io
      (Printf.sprintf "audit log %s: injected crash before fsync" t.path)
  | None -> (
    match write_all fd bytes 0 len with
    | () -> (
      t.size <- t.size + len;
      t.appended <- t.appended + 1;
      t.dirty <- true;
      match t.seg with
      | None -> ()
      | Some s ->
        s.seg_records <- s.seg_records + 1;
        if t.size >= s.max_bytes then (
          (* Size-based rotation. The record above is already written;
             a failed rotation loses nothing durable. Fail-closed still
             poisons (the next checkpoint can no longer be trusted to
             happen); fail-open stays on the oversized segment and will
             retry rotating at the next append. *)
          match rotate t with
          | () -> ()
          | exception (Unix.Unix_error _ | Engine_error.Error _ | Failure _)
            -> (
            match t.policy with
            | Fail_closed ->
              kill t;
              log_io
                (Printf.sprintf "audit log %s: segment rotation failed"
                   t.path)
            | Fail_open -> ())))
    | exception Unix.Unix_error (e, _, _) ->
      heal t;
      if e = Unix.ENOSPC && t.seg <> None then
        enospc_retry t bytes len "write failed (ENOSPC)"
      else
        log_io
          (Printf.sprintf "audit log %s: write failed (%s)" t.path
             (Unix.error_message e)))

(** Flush appended records to stable storage (no-op when clean). *)
let sync t =
  if t.dirty then
    match t.fd with
    | None -> log_io (Printf.sprintf "audit log %s: handle is dead" t.path)
    | Some fd -> (
      match Unix.fsync fd with
      | () ->
        t.dirty <- false;
        t.syncs <- t.syncs + 1
      | exception Unix.Unix_error (e, _, _) ->
        log_io
          (Printf.sprintf "audit log %s: fsync failed (%s)" t.path
             (Unix.error_message e)))

let close t = kill t

(* ------------------------------------------------------------------ *)
(* Group commit                                                        *)
(* ------------------------------------------------------------------ *)

type wal = t
(** alias usable inside {!Group}, where [t] names the group writer *)

(** Shared writer that batches many sessions' records into one fsync.

    Leader/follower group commit: a session's {!Group.submit} enqueues its
    records, then either becomes the {e leader} — draining the whole queue
    through {!append} and issuing a single {!sync} for everyone in the
    batch — or waits until a leader's fsync covers its records. While the
    leader is inside [fsync(2)] (a blocking section that releases the
    OCaml runtime lock), other sessions keep executing and enqueueing, so
    the next batch grows with concurrency and the fsync cost amortizes:
    fsyncs/statement drops below 1 as soon as sessions overlap.

    Durability ordering is preserved per session: [submit] returns only
    once the fsync covering the caller's records completed, so a caller
    that releases results after [submit] keeps the evidence-before-results
    invariant. A failed batch (failed append or fsync, including injected
    faults on the underlying log) kills the writer: every waiter in the
    batch — and every later submit — gets the [Log_io] error, and recovery
    of the on-disk log goes through the normal torn-tail scan. *)
module Group = struct
  type nonrec t = {
    wal : t;  (** underlying log; all appends/fsyncs funnel through here *)
    mu : Mutex.t;
    flushed : Condition.t;  (** a flush completed (or the writer died) *)
    space : Condition.t;  (** the queue drained below the backpressure cap *)
    max_pending : int;  (** queued-record cap; submit blocks above it *)
    mutable queue : record list;  (** pending records, newest first *)
    mutable queued : int;
    mutable enqueued : int;  (** records ever enqueued (ticket counter) *)
    mutable durable : int;  (** records covered by a completed fsync *)
    mutable flushing : bool;  (** a leader is mid-flush *)
    mutable paused : bool;  (** test hook: hold flushes to force grouping *)
    mutable dead : string option;  (** first fatal error; poisons the writer *)
    mutable closed : bool;
    (* stats *)
    mutable batches : int;
    mutable submits : int;  (** submit calls that carried records *)
    mutable max_batch : int;  (** largest single-fsync batch (records) *)
  }

  type stats = {
    s_submits : int;
    s_records : int;
    s_batches : int;
    s_fsyncs : int;
    s_max_batch : int;
  }

  let create ?(max_pending = 4096) wal =
    {
      wal;
      mu = Mutex.create ();
      flushed = Condition.create ();
      space = Condition.create ();
      max_pending;
      queue = [];
      queued = 0;
      enqueued = 0;
      durable = 0;
      flushing = false;
      paused = false;
      dead = None;
      closed = false;
      batches = 0;
      submits = 0;
      max_batch = 0;
    }

  let wal g = g.wal

  let stats g =
    Mutex.lock g.mu;
    let s =
      {
        s_submits = g.submits;
        s_records = g.enqueued;
        s_batches = g.batches;
        s_fsyncs = syncs g.wal;
        s_max_batch = g.max_batch;
      }
    in
    Mutex.unlock g.mu;
    s

  (** Records enqueued but not yet durable (test/monitoring hook). *)
  let pending g =
    Mutex.lock g.mu;
    let n = g.enqueued - g.durable in
    Mutex.unlock g.mu;
    n

  (** Hold flushes: submits enqueue and park, so a test can force K
      sessions' records into one batch before {!resume} releases it. *)
  let pause g =
    Mutex.lock g.mu;
    g.paused <- true;
    Mutex.unlock g.mu

  let resume g =
    Mutex.lock g.mu;
    g.paused <- false;
    Condition.broadcast g.flushed;
    Mutex.unlock g.mu

  let fail_dead g msg =
    log_io (Printf.sprintf "group writer on %s: %s" g.wal.path msg)

  (* Drain the queue as the leader: append every queued record, one fsync
     for the lot. Called with [g.mu] held; releases it around the I/O. *)
  let lead g =
    g.flushing <- true;
    let batch = List.rev g.queue in
    let n = g.queued in
    let upto = g.enqueued in
    g.queue <- [];
    g.queued <- 0;
    Condition.broadcast g.space;
    Mutex.unlock g.mu;
    let outcome =
      try
        List.iter (append g.wal) batch;
        sync g.wal;
        Ok ()
      with
      | Engine_error.Error (Engine_error.Log_io m) -> Error m
      | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    in
    Mutex.lock g.mu;
    g.flushing <- false;
    (match outcome with
    | Ok () ->
      g.durable <- upto;
      g.batches <- g.batches + 1;
      if n > g.max_batch then g.max_batch <- n
    | Error m -> g.dead <- Some m);
    Condition.broadcast g.flushed;
    Condition.broadcast g.space

  (** Append [records] and block until they are durable (covered by a
      group fsync). Empty submissions return immediately. Raises
      [Engine_error.Error (Log_io _)] once the writer is dead or closed —
      the policy layer decides fail-closed vs fail-open, exactly as for a
      direct {!append}/{!sync}. *)
  let submit g (records : record list) : unit =
    if records <> [] then begin
      Mutex.lock g.mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock g.mu)
        (fun () ->
          let n = List.length records in
          while g.dead = None && not g.closed && g.queued >= g.max_pending do
            Condition.wait g.space g.mu
          done;
          (match g.dead with
          | Some m -> fail_dead g m
          | None -> if g.closed then fail_dead g "writer is closed");
          g.queue <- List.rev_append records g.queue;
          g.queued <- g.queued + n;
          g.enqueued <- g.enqueued + n;
          g.submits <- g.submits + 1;
          let ticket = g.enqueued in
          let rec ensure () =
            if g.durable >= ticket then ()
            else
              match g.dead with
              | Some m -> fail_dead g m
              | None ->
                if g.flushing || g.paused then begin
                  Condition.wait g.flushed g.mu;
                  ensure ()
                end
                else begin
                  lead g;
                  ensure ()
                end
          in
          ensure ())
    end

  (** Flush whatever is queued (unparking any paused state) without
      closing. Raises on a dead writer. *)
  let drain g =
    Mutex.lock g.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock g.mu)
      (fun () ->
        g.paused <- false;
        let rec loop () =
          match g.dead with
          | Some m -> fail_dead g m
          | None ->
            if g.flushing then begin
              Condition.wait g.flushed g.mu;
              loop ()
            end
            else if g.queued > 0 then begin
              lead g;
              loop ()
            end
        in
        loop ())

  (** Drain, then close the writer and the underlying log. Waiters and
      later submits fail; a dead writer closes without raising. *)
  let close g =
    (try drain g with Engine_error.Error (Engine_error.Log_io _) -> ());
    Mutex.lock g.mu;
    g.closed <- true;
    Condition.broadcast g.flushed;
    Condition.broadcast g.space;
    Mutex.unlock g.mu;
    close g.wal
end
