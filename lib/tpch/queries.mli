(** The TPC-H query workload of the paper's evaluation (§V). *)

type query = { id : string; description : string; sql : string }

(** The §V-A micro-benchmark join template:
    [SELECT * FROM orders, customer WHERE c_custkey = o_custkey AND
    c_acctbal > $1 AND o_orderdate > $2]. *)
val micro_join : acctbal:float -> orderdate:string -> string

val orderdate_lo : int
val orderdate_hi : int

(** Cutoff date such that [o_orderdate > cutoff] selects the given fraction
    of (uniformly distributed) orders. *)
val orderdate_cutoff : selectivity:float -> string

(** The §V audit expression: every customer of one market segment
    (≈ 20 % of Customer), partitioned by [c_custkey]. Returns the
    [CREATE AUDIT EXPRESSION] statement. *)
val audit_segment : ?name:string -> ?segment:string -> unit -> string

val q3 : query
val q5 : query
val q7 : query
val q8 : query
val q10 : query
val q13 : query
val q18 : query

(** The seven customer-referencing, self-join-free TPC-H queries of §V-C:
    Q3, Q5, Q7, Q8, Q10, Q13, Q18. *)
val customer_workload : query list

(** FGA-precision probes against {!audit_segment} (segment BUILDING):
    four false-positive traps for the pre-abstract-domain analyzer (LIKE
    prefix, disjunction, arithmetic, equi-join transfer — none can access
    an audited customer), one directly-disjoint segment both analyzers
    decide, and three genuinely-overlapping queries for the
    zero-false-negative check. *)
val fga_workload : query list

val q1 : query
val q2 : query
val q4 : query
val q6 : query
val q9 : query
val q11 : query
val q12 : query
val q14 : query
val q15 : query
val q16 : query
val q17 : query
val q19 : query
val q20 : query
val q22 : query

(** Customer-free (or self-joining) queries used to exercise the engine;
    with {!customer_workload} this covers 20 of the 22 TPC-H queries (only
    Q21 is omitted — see the implementation note). *)
val engine_workload : query list

val all : query list

(** Find by id ("Q3", ...); raises [Invalid_argument] on unknown ids. *)
val find : string -> query
