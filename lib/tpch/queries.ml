(** TPC-H query workload.

    [customer_workload] is the paper's evaluation set (§V-C): the seven
    TPC-H queries that reference the Customer table and contain no self-join
    of it — Q3, Q5, Q7, Q8, Q10, Q13, Q18. [engine_workload] adds
    customer-free queries (Q1, Q6, Q12, Q14) used to exercise the engine.

    Parameters are the TPC-H reference parameters except where the small
    scale factors demand resizing (noted inline). *)

type query = { id : string; description : string; sql : string }

(* --------------------------------------------------------------- *)
(* §V-A micro-benchmark                                             *)
(* --------------------------------------------------------------- *)

(** The §V-A join template: [$1] = acctbal threshold, [$2] = orderdate
    threshold. *)
let micro_join ~acctbal ~orderdate =
  Printf.sprintf
    "SELECT * FROM orders, customer WHERE c_custkey = o_custkey AND \
     c_acctbal > %g AND o_orderdate > DATE '%s'"
    acctbal orderdate

let orderdate_lo = Storage.Value.date_of_string "1992-01-01"
let orderdate_hi = Storage.Value.date_of_string "1998-08-02"

(** Orderdate cutoff such that [o_orderdate > cutoff] selects a fraction
    [selectivity] of uniformly distributed orders. *)
let orderdate_cutoff ~selectivity =
  let span = float_of_int (orderdate_hi - orderdate_lo) in
  let d = orderdate_hi - int_of_float (selectivity *. span) in
  Storage.Value.string_of_date d

(** The §V audit expression: every customer of one market segment
    (≈ 20 % of the Customer table), partitioned by [c_custkey]. *)
let audit_segment ?(name = "audit_customer") ?(segment = "BUILDING") () =
  Printf.sprintf
    "CREATE AUDIT EXPRESSION %s AS SELECT * FROM customer WHERE \
     c_mktsegment = '%s' FOR SENSITIVE TABLE customer, PARTITION BY \
     c_custkey"
    name segment

(* --------------------------------------------------------------- *)
(* The seven customer queries of §V-C                               *)
(* --------------------------------------------------------------- *)

let q3 =
  {
    id = "Q3";
    description = "shipping priority (top-10 revenue, BUILDING segment)";
    sql =
      "SELECT TOP 10 l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS \
       revenue, o_orderdate, o_shippriority FROM customer, orders, lineitem \
       WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND \
       l_orderkey = o_orderkey AND o_orderdate < DATE '1995-03-15' AND \
       l_shipdate > DATE '1995-03-15' GROUP BY l_orderkey, o_orderdate, \
       o_shippriority ORDER BY revenue DESC, o_orderdate";
  }

let q5 =
  {
    id = "Q5";
    description = "local supplier volume (ASIA, 1994)";
    sql =
      "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue \
       FROM customer, orders, lineitem, supplier, nation, region WHERE \
       c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = \
       s_suppkey AND c_nationkey = s_nationkey AND s_nationkey = \
       n_nationkey AND n_regionkey = r_regionkey AND r_name = 'ASIA' AND \
       o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1994-01-01' \
       + INTERVAL '1' YEAR GROUP BY n_name ORDER BY revenue DESC";
  }

let q7 =
  {
    id = "Q7";
    description = "volume shipping (FRANCE <-> GERMANY)";
    sql =
      "SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue FROM \
       (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
       extract(YEAR FROM l_shipdate) AS l_year, l_extendedprice * (1 - \
       l_discount) AS volume FROM supplier, lineitem, orders, customer, \
       nation n1, nation n2 WHERE s_suppkey = l_suppkey AND o_orderkey = \
       l_orderkey AND c_custkey = o_custkey AND s_nationkey = \
       n1.n_nationkey AND c_nationkey = n2.n_nationkey AND ((n1.n_name = \
       'FRANCE' AND n2.n_name = 'GERMANY') OR (n1.n_name = 'GERMANY' AND \
       n2.n_name = 'FRANCE')) AND l_shipdate BETWEEN DATE '1995-01-01' AND \
       DATE '1996-12-31') shipping GROUP BY supp_nation, cust_nation, \
       l_year ORDER BY supp_nation, cust_nation, l_year";
  }

let q8 =
  {
    id = "Q8";
    description = "national market share (BRAZIL in AMERICA)";
    sql =
      "SELECT o_year, sum(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 \
       END) / sum(volume) AS mkt_share FROM (SELECT extract(YEAR FROM \
       o_orderdate) AS o_year, l_extendedprice * (1 - l_discount) AS \
       volume, n2.n_name AS nation FROM part, supplier, lineitem, orders, \
       customer, nation n1, nation n2, region WHERE p_partkey = l_partkey \
       AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey AND o_custkey \
       = c_custkey AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = \
       r_regionkey AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey \
       AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' AND \
       p_type = 'ECONOMY ANODIZED STEEL') all_nations GROUP BY o_year ORDER \
       BY o_year";
  }

let q10 =
  {
    id = "Q10";
    description = "returned item reporting (top-20 customers by revenue)";
    sql =
      "SELECT TOP 20 c_custkey, c_name, sum(l_extendedprice * (1 - \
       l_discount)) AS revenue, c_acctbal, n_name, c_address, c_phone, \
       c_comment FROM customer, orders, lineitem, nation WHERE c_custkey = \
       o_custkey AND l_orderkey = o_orderkey AND o_orderdate >= DATE \
       '1993-10-01' AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' \
       MONTH AND l_returnflag = 'R' AND c_nationkey = n_nationkey GROUP BY \
       c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
       ORDER BY revenue DESC";
  }

let q13 =
  {
    id = "Q13";
    description = "customer distribution (left outer join, NOT LIKE)";
    sql =
      "SELECT c_count, count(*) AS custdist FROM (SELECT c_custkey AS \
       custkey, count(o_orderkey) AS c_count FROM customer LEFT OUTER JOIN \
       orders ON c_custkey = o_custkey AND o_comment NOT LIKE \
       '%special%requests%' GROUP BY c_custkey) c_orders GROUP BY c_count \
       ORDER BY custdist DESC, c_count DESC";
  }

(* TPC-H uses sum(l_quantity) > 300; with 1–7 lines per order the maximum is
   350, so 300 selects almost nothing at small scale. 250 keeps the query
   shape (IN + GROUP BY/HAVING) while returning a workload. *)
let q18 =
  {
    id = "Q18";
    description = "large volume customer (IN subquery with HAVING, top-100)";
    sql =
      "SELECT TOP 100 c_name, c_custkey, o_orderkey, o_orderdate, \
       o_totalprice, sum(l_quantity) AS total_qty FROM customer, orders, \
       lineitem WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP \
       BY l_orderkey HAVING sum(l_quantity) > 250) AND c_custkey = \
       o_custkey AND o_orderkey = l_orderkey GROUP BY c_name, c_custkey, \
       o_orderkey, o_orderdate, o_totalprice ORDER BY o_totalprice DESC, \
       o_orderdate";
  }

let customer_workload = [ q3; q5; q7; q8; q10; q13; q18 ]

(* --------------------------------------------------------------- *)
(* FGA-precision probe workload (§VI)                               *)
(* --------------------------------------------------------------- *)

(* Probes against the BUILDING-segment audit expression, chosen so that
   ground truth (the hcn audit operator's ACCESSED cardinality) is known
   by construction. The FP* queries cannot touch a BUILDING customer but
   each defeats the pre-abstract-domain analyzer a different way (LIKE,
   disjunction, arithmetic, join transfer); the TP* queries genuinely
   overlap; TN1 is directly disjoint (both analyzers decide it). *)

let fp1 =
  {
    id = "FP1";
    description = "LIKE prefix disjoint from the audited segment";
    sql = "SELECT c_name FROM customer WHERE c_mktsegment LIKE 'FURN%'";
  }

let fp2 =
  {
    id = "FP2";
    description = "disjunction of segments, none the audited one";
    sql =
      "SELECT c_name FROM customer WHERE c_mktsegment = 'AUTOMOBILE' OR \
       c_mktsegment = 'MACHINERY'";
  }

let fp3 =
  {
    id = "FP3";
    description = "arithmetically contradictory account-balance range";
    sql =
      "SELECT c_name FROM customer WHERE c_acctbal + 100 < 0 AND c_acctbal \
       > 1000";
  }

let fp4 =
  {
    id = "FP4";
    description = "contradiction only visible across an equi-join";
    sql =
      "SELECT c_name, o_orderkey FROM customer, orders WHERE c_custkey = \
       o_custkey AND o_custkey > 1000 AND c_custkey < 500";
  }

let tn1 =
  {
    id = "TN1";
    description = "directly disjoint segment (decidable pre-refactor)";
    sql = "SELECT c_name FROM customer WHERE c_mktsegment = 'FURNITURE'";
  }

let tp1 =
  {
    id = "TP1";
    description = "LIKE prefix overlapping the audited segment";
    sql = "SELECT c_name FROM customer WHERE c_mktsegment LIKE 'BUIL%'";
  }

let tp2 =
  {
    id = "TP2";
    description = "suffix pattern (opaque to both analyzers)";
    sql = "SELECT c_name FROM customer WHERE c_mktsegment LIKE '%ING'";
  }

let tp3 =
  {
    id = "TP3";
    description = "join with no segment predicate at all";
    sql =
      "SELECT c_name, o_orderkey FROM customer, orders WHERE c_custkey = \
       o_custkey AND o_totalprice > 100000";
  }

let fga_workload = [ fp1; fp2; fp3; fp4; tn1; tp1; tp2; tp3 ]

(* --------------------------------------------------------------- *)
(* Customer-free queries for engine coverage                        *)
(* --------------------------------------------------------------- *)

let q1 =
  {
    id = "Q1";
    description = "pricing summary report";
    sql =
      "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, \
       sum(l_extendedprice) AS sum_base_price, sum(l_extendedprice * (1 - \
       l_discount)) AS sum_disc_price, sum(l_extendedprice * (1 - \
       l_discount) * (1 + l_tax)) AS sum_charge, avg(l_quantity) AS \
       avg_qty, avg(l_extendedprice) AS avg_price, avg(l_discount) AS \
       avg_disc, count(*) AS count_order FROM lineitem WHERE l_shipdate <= \
       DATE '1998-12-01' - INTERVAL '90' DAY GROUP BY l_returnflag, \
       l_linestatus ORDER BY l_returnflag, l_linestatus";
  }

let q6 =
  {
    id = "Q6";
    description = "forecasting revenue change (scalar aggregate)";
    sql =
      "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem \
       WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE \
       '1994-01-01' + INTERVAL '1' YEAR AND l_discount BETWEEN 0.05 AND \
       0.07 AND l_quantity < 24";
  }

let q12 =
  {
    id = "Q12";
    description = "shipping modes and order priority (CASE aggregation)";
    sql =
      "SELECT l_shipmode, sum(CASE WHEN o_orderpriority = '1-URGENT' OR \
       o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, \
       sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> \
       '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count FROM orders, lineitem \
       WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') AND \
       l_commitdate < l_receiptdate AND l_shipdate < l_commitdate AND \
       l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE \
       '1994-01-01' + INTERVAL '1' YEAR GROUP BY l_shipmode ORDER BY \
       l_shipmode";
  }

let q14 =
  {
    id = "Q14";
    description = "promotion effect (conditional aggregate ratio)";
    sql =
      "SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%' THEN \
       l_extendedprice * (1 - l_discount) ELSE 0 END) / \
       sum(l_extendedprice * (1 - l_discount)) AS promo_revenue FROM \
       lineitem, part WHERE l_partkey = p_partkey AND l_shipdate >= DATE \
       '1995-09-01' AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' \
       MONTH";
  }

let q2 =
  {
    id = "Q2";
    description = "minimum cost supplier (correlated scalar MIN subquery)";
    sql =
      "SELECT TOP 100 s_acctbal, s_name, n_name, p_partkey, p_mfgr, \
       s_address, s_phone FROM part, supplier, partsupp, nation, region \
       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = \
       15 AND p_type LIKE '%STEEL' AND s_nationkey = n_nationkey AND \
       n_regionkey = r_regionkey AND r_name = 'EUROPE' AND ps_supplycost = \
       (SELECT min(ps_supplycost) FROM partsupp, supplier, nation, region \
       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND \
       s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = \
       'EUROPE') ORDER BY s_acctbal DESC, n_name, s_name, p_partkey";
  }

let q4 =
  {
    id = "Q4";
    description = "order priority checking (correlated EXISTS)";
    sql =
      "SELECT o_orderpriority, count(*) AS order_count FROM orders WHERE \
       o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-07-01' \
       + INTERVAL '3' MONTH AND EXISTS (SELECT * FROM lineitem WHERE \
       l_orderkey = o_orderkey AND l_commitdate < l_receiptdate) GROUP BY \
       o_orderpriority ORDER BY o_orderpriority";
  }

(* TPC-H puts the threshold subquery in HAVING; our binder does not hoist
   subqueries above GROUP BY, so the standard derived-table formulation is
   used (identical result). *)
let q11 =
  {
    id = "Q11";
    description = "important stock identification (HAVING-threshold via derived table)";
    sql =
      "SELECT pk, val FROM (SELECT ps_partkey AS pk, sum(ps_supplycost * \
       ps_availqty) AS val FROM partsupp, supplier, nation WHERE ps_suppkey \
       = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY' \
       GROUP BY ps_partkey) t WHERE val > (SELECT sum(ps_supplycost * \
       ps_availqty) * 0.0001 FROM partsupp, supplier, nation WHERE \
       ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = \
       'GERMANY') ORDER BY val DESC";
  }

let q9 =
  {
    id = "Q9";
    description = "product type profit (6-way join over a derived table)";
    sql =
      "SELECT nation, o_year, sum(amount) AS sum_profit FROM (SELECT n_name \
       AS nation, extract(YEAR FROM o_orderdate) AS o_year, l_extendedprice \
       * (1 - l_discount) - ps_supplycost * l_quantity AS amount FROM part, \
       supplier, lineitem, partsupp, orders, nation WHERE s_suppkey = \
       l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey AND \
       p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = \
       n_nationkey AND p_name LIKE '%azure%') profit GROUP BY nation, \
       o_year ORDER BY nation, o_year DESC";
  }

(* The reference formulation uses CREATE VIEW revenue0; the WITH form is
   equivalent and exercises the CTE inliner (the CTE is referenced twice). *)
let q15 =
  {
    id = "Q15";
    description = "top supplier (revenue CTE referenced twice + scalar MAX)";
    sql =
      "WITH revenue0 AS (SELECT l_suppkey AS supplier_no, \
       sum(l_extendedprice * (1 - l_discount)) AS total_revenue FROM \
       lineitem WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE \
       '1996-01-01' + INTERVAL '3' MONTH GROUP BY l_suppkey) SELECT \
       s_suppkey, s_name, s_address, s_phone, total_revenue FROM supplier, \
       revenue0 WHERE s_suppkey = supplier_no AND total_revenue = (SELECT \
       max(total_revenue) FROM revenue0 r2) ORDER BY s_suppkey";
  }

let q16 =
  {
    id = "Q16";
    description = "parts/supplier relationship (NOT IN subquery, COUNT DISTINCT)";
    sql =
      "SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS \
       supplier_cnt FROM partsupp, part WHERE p_partkey = ps_partkey AND \
       p_brand <> 'Brand#45' AND p_type NOT LIKE 'MEDIUM%' AND p_size IN \
       (49, 14, 23, 45, 19, 3, 36, 9) AND ps_suppkey NOT IN (SELECT \
       s_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%') \
       GROUP BY p_brand, p_type, p_size ORDER BY supplier_cnt DESC, \
       p_brand, p_type, p_size";
  }

let q17 =
  {
    id = "Q17";
    description = "small-quantity-order revenue (correlated scalar AVG)";
    sql =
      "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly FROM lineitem, part \
       WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' AND p_container \
       = 'MED BAG' AND l_quantity < (SELECT 0.2 * avg(l_quantity) FROM \
       lineitem WHERE l_partkey = p_partkey)";
  }

(* TPC-H writes Q19 as a disjunction of three conjunctions each repeating
   the join predicate; the standard optimized form factors out the common
   conjuncts so the equi join stays hashable. *)
let q19 =
  {
    id = "Q19";
    description = "discounted revenue (disjunctive predicates)";
    sql =
      "SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue FROM \
       lineitem, part WHERE p_partkey = l_partkey AND l_shipinstruct = \
       'DELIVER IN PERSON' AND l_shipmode IN ('AIR', 'REG AIR') AND \
       ((p_brand = 'Brand#12' AND p_container = 'SM CASE' AND l_quantity \
       BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5) OR (p_brand = \
       'Brand#23' AND p_container = 'MED BAG' AND l_quantity BETWEEN 10 AND \
       20 AND p_size BETWEEN 1 AND 10) OR (p_brand = 'Brand#34' AND \
       p_container = 'LG BOX' AND l_quantity BETWEEN 20 AND 30 AND p_size \
       BETWEEN 1 AND 15))";
  }

let q20 =
  {
    id = "Q20";
    description = "potential part promotion (nested IN + correlated scalar)";
    sql =
      "SELECT s_name, s_address FROM supplier, nation WHERE s_suppkey IN \
       (SELECT ps_suppkey FROM partsupp WHERE ps_partkey IN (SELECT \
       p_partkey FROM part WHERE p_name LIKE 'a%') AND ps_availqty > \
       (SELECT 0.5 * sum(l_quantity) FROM lineitem WHERE l_partkey = \
       ps_partkey AND l_suppkey = ps_suppkey AND l_shipdate >= DATE \
       '1994-01-01' AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' \
       YEAR)) AND s_nationkey = n_nationkey AND n_name = 'CANADA' ORDER BY \
       s_name";
  }

let q22 =
  {
    id = "Q22";
    description = "global sales opportunity (NOT EXISTS + scalar AVG + substring)";
    sql =
      "SELECT cntrycode, count(*) AS numcust, sum(acctbal) AS totacctbal \
       FROM (SELECT substring(c_phone, 1, 2) AS cntrycode, c_acctbal AS \
       acctbal FROM customer WHERE substring(c_phone, 1, 2) IN ('13', '31', \
       '23', '29', '30', '18', '17') AND c_acctbal > (SELECT avg(c_acctbal) \
       FROM customer WHERE c_acctbal > 0.00 AND substring(c_phone, 1, 2) IN \
       ('13', '31', '23', '29', '30', '18', '17')) AND NOT EXISTS (SELECT * \
       FROM orders WHERE o_custkey = c_custkey)) custsale GROUP BY \
       cntrycode ORDER BY cntrycode";
  }

(** Customer-free (or self-joining) queries used to exercise the engine.
    Together with {!customer_workload} this covers 20 of the 22 TPC-H
    queries; Q10/Q13/Q18 etc. are above, and only Q21 is omitted (its
    correlated EXISTS/NOT EXISTS self-joins of lineitem need decorrelation
    into composite-key semi joins to run in reasonable time — future
    work). *)
let engine_workload =
  [ q1; q2; q4; q6; q9; q11; q12; q14; q15; q16; q17; q19; q20; q22 ]

let all = engine_workload @ customer_workload

let find id =
  match List.find_opt (fun q -> q.id = id) all with
  | Some q -> q
  | None -> invalid_arg ("unknown TPC-H query " ^ id)
