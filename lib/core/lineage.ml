(** Lineage-based offline auditing (why-provenance execution).

    The paper's offline auditor decides, per Definition 2.3, whether each
    sensitive tuple *influences* the query result. Re-executing the query
    once per tuple (see {!Offline_exact}) is exact but quadratic; prior work
    instead computes provenance, at a heavy per-row annotation cost — the
    "up to 5x" overhead the paper cites for [6]. This module is that
    annotation-propagating executor: each intermediate row carries the set
    of sensitive IDs in its lineage, and the accessed set is the union over
    the final output.

    Agreement with the exact auditor (validated by tests):
    - equal on select–join, projection, aggregation and top-k queries built
      from COUNT/SUM aggregates (the evaluation workload);
    - over-approximates when duplicate elimination hides influence (the
      §II-B caveat the paper itself acknowledges) and for MIN/MAX groups
      where a non-extremal member is deleted;
    - under-approximates for negated subqueries whose witnesses *block*
      output rows (no TPC-H evaluation query is of this form). The online
      heuristics still audit those witnesses, so the pipeline's one-sided
      guarantee is preserved where the paper claims it. *)

open Storage
open Plan
module Ids = Value.Set_v

type arow = Tuple.t * Ids.t

exception Lineage_error of string

let rec eval_plan (ctx : Exec.Exec_ctx.t) (view : Sensitive_view.t)
    (plan : Logical.t) : arow list =
  let recur p = eval_plan ctx view p in
  let ev row e = Exec.Eval.eval ctx row e in
  let truthy row p = Exec.Eval.truthy ctx row p in
  match plan with
  | Logical.Scan { table; schema; cols; _ } ->
    let sensitive =
      Schema.equal_names table view.Sensitive_view.expr.Audit_expr.sensitive_table
    in
    let key_idx =
      if not sensitive then None
      else
        let out_schema =
          match cols with
          | None -> schema
          | Some idxs -> Array.map (fun i -> Schema.col schema i) idxs
        in
        match
          Schema.find_all out_schema
            view.Sensitive_view.expr.Audit_expr.partition_by
        with
        | i :: _ -> Some i
        | [] ->
          raise
            (Lineage_error
               (Printf.sprintf
                  "partition key pruned from scan of %s; run lineage on an \
                   unpruned plan"
                  table))
    in
    if table = "$dual" then [ ([||], Ids.empty) ]
    else begin
      let t = Catalog.find ctx.Exec.Exec_ctx.catalog table in
      let hide =
        match ctx.Exec.Exec_ctx.hide with
        | Some (ht, col, v) when Schema.equal_names ht table -> Some (col, v)
        | _ -> None
      in
      let acc = ref [] in
      Table.iter ?hide t (fun row ->
          let out =
            match cols with None -> row | Some idxs -> Tuple.project row idxs
          in
          let ann =
            match key_idx with
            | Some k ->
              let id = Tuple.get out k in
              if Sensitive_view.contains view id then Ids.singleton id
              else Ids.empty
            | None -> Ids.empty
          in
          acc := (out, ann) :: !acc);
      List.rev !acc
    end
  | Logical.Filter { pred; child } ->
    List.filter (fun (row, _) -> truthy row pred) (recur child)
  | Logical.Project { cols; child } ->
    let exprs = Array.of_list (List.map fst cols) in
    List.map
      (fun (row, ann) -> (Array.map (ev row) exprs, ann))
      (recur child)
  | Logical.Join { kind; pred; left; right } ->
    let lrows = recur left and rrows = recur right in
    let la = Logical.arity left in
    let keys, residual = Plan.Physical.split_equi ~left_arity:la pred in
    let residual =
      if residual = [] then None else Some (Scalar.conjoin residual)
    in
    let ra = Logical.arity right in
    let null_pad = Array.make ra Value.Null in
    let candidates =
      if keys <> [] && lrows <> [] then begin
        let rkeys = Array.of_list (List.map snd keys) in
        let lkeys = Array.of_list (List.map fst keys) in
        let tbl = Tuple.Hashtbl_t.create 1024 in
        List.iter
          (fun ((row, _) as ar) ->
            let k = Array.map (ev row) rkeys in
            if not (Array.exists Value.is_null k) then
              Tuple.Hashtbl_t.replace tbl k
                (ar :: (try Tuple.Hashtbl_t.find tbl k with Not_found -> [])))
          rrows;
        fun (lrow : Tuple.t) ->
          let k = Array.map (ev lrow) lkeys in
          if Array.exists Value.is_null k then []
          else
            match Tuple.Hashtbl_t.find_opt tbl k with
            | Some rows -> List.rev rows
            | None -> []
      end
      else fun _ -> rrows
    in
    List.concat_map
      (fun (lrow, lann) ->
        let joined =
          List.filter_map
            (fun (rrow, rann) ->
              let combined = Tuple.append lrow rrow in
              let ok =
                match residual with
                | None -> true
                | Some p -> truthy combined p
              in
              if ok then Some (combined, Ids.union lann rann) else None)
            (candidates lrow)
        in
        match (joined, kind) with
        | [], Logical.J_left -> [ (Tuple.append lrow null_pad, lann) ]
        | _ -> joined)
      lrows
  | Logical.Semi_join { anti; left; left_key; right; right_key } ->
    let rrows = recur right in
    (* key -> union of witness annotations *)
    let tbl = Value.Hashtbl_v.create 256 in
    List.iter
      (fun (row, ann) ->
        let k = ev row right_key in
        if not (Value.is_null k) then
          let prev =
            Option.value ~default:Ids.empty (Value.Hashtbl_v.find_opt tbl k)
          in
          Value.Hashtbl_v.replace tbl k (Ids.union prev ann))
      rrows;
    List.filter_map
      (fun (row, ann) ->
        let k = ev row left_key in
        let witness =
          if Value.is_null k then None else Value.Hashtbl_v.find_opt tbl k
        in
        match (witness, anti) with
        | Some w, false -> Some (row, Ids.union ann w)
        | None, true -> Some (row, ann)
        | Some _, true | None, false -> None)
      (recur left)
  | Logical.Apply { kind; outer; inner; _ } ->
    let orows = recur outer in
    List.filter_map
      (fun (row, ann) ->
        ctx.Exec.Exec_ctx.params <- row :: ctx.Exec.Exec_ctx.params;
        let irows =
          Fun.protect
            ~finally:(fun () ->
              ctx.Exec.Exec_ctx.params <- List.tl ctx.Exec.Exec_ctx.params)
            (fun () -> recur inner)
        in
        let iann =
          List.fold_left (fun acc (_, a) -> Ids.union acc a) Ids.empty irows
        in
        match kind with
        | Logical.A_semi ->
          if irows <> [] then Some (row, Ids.union ann iann) else None
        | Logical.A_anti -> if irows = [] then Some (row, ann) else None
        | Logical.A_scalar ->
          let v =
            match irows with
            | (r, _) :: _ when Array.length r > 0 -> r.(0)
            | _ -> Value.Null
          in
          Some (Tuple.append row [| v |], Ids.union ann iann))
      orows
  | Logical.Group_by { keys; aggs; child } ->
    let rows = recur child in
    let key_exprs = Array.of_list (List.map fst keys) in
    let agg_list = Array.of_list aggs in
    let groups = Tuple.Hashtbl_t.create 256 in
    let order = ref [] in
    List.iter
      (fun (row, ann) ->
        let k = Array.map (ev row) key_exprs in
        let states, gann =
          match Tuple.Hashtbl_t.find_opt groups k with
          | Some (s, a) -> (s, a)
          | None ->
            let s = Array.map Exec.Aggregate.create agg_list in
            order := k :: !order;
            (s, ref Ids.empty)
        in
        gann := Ids.union !gann ann;
        Array.iteri
          (fun i st ->
            let v =
              match agg_list.(i).Logical.arg with
              | None -> None
              | Some e -> Some (ev row e)
            in
            Exec.Aggregate.update st v)
          states;
        Tuple.Hashtbl_t.replace groups k (states, gann))
      rows;
    let emit k =
      let states, gann = Tuple.Hashtbl_t.find groups k in
      (Tuple.append k (Array.map Exec.Aggregate.final states), !gann)
    in
    if Array.length key_exprs = 0 && Tuple.Hashtbl_t.length groups = 0 then
      [ (Array.map (fun a -> Exec.Aggregate.final (Exec.Aggregate.create a)) agg_list,
         Ids.empty) ]
    else List.rev_map emit !order
  | Logical.Sort { keys; child } ->
    let rows = recur child in
    let key_exprs = Array.of_list keys in
    let decorated =
      List.map
        (fun ((row, _) as ar) ->
          (Array.map (fun (e, _) -> ev row e) key_exprs, ar))
        rows
    in
    let cmp (ka, _) (kb, _) =
      let rec go i =
        if i = Array.length key_exprs then 0
        else
          let _, dir = key_exprs.(i) in
          let c = Value.compare_total ka.(i) kb.(i) in
          let c = match dir with Sql.Ast.Asc -> c | Sql.Ast.Desc -> -c in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    in
    List.map snd (List.stable_sort cmp decorated)
  | Logical.Limit { n; child } ->
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take n (recur child)
  | Logical.Distinct child ->
    let rows = recur child in
    let seen = Tuple.Hashtbl_t.create 256 in
    let order = ref [] in
    List.iter
      (fun (row, ann) ->
        match Tuple.Hashtbl_t.find_opt seen row with
        | Some a -> a := Ids.union !a ann
        | None ->
          Tuple.Hashtbl_t.replace seen row (ref ann);
          order := row :: !order)
      rows;
    List.rev_map (fun row -> (row, !(Tuple.Hashtbl_t.find seen row))) !order
  | Logical.Audit { child; _ } -> recur child
  | Logical.Set_op { op; left; right } -> (
    let lrows = recur left in
    let rrows = recur right in
    match op with
    | Sql.Ast.Union_all -> lrows @ rrows
    | Sql.Ast.Union ->
      (* Deduplicate, merging the annotations of duplicates (conservative
         why-provenance, as for Distinct). *)
      let seen = Tuple.Hashtbl_t.create 256 in
      let order = ref [] in
      List.iter
        (fun (row, ann) ->
          match Tuple.Hashtbl_t.find_opt seen row with
          | Some a -> a := Ids.union !a ann
          | None ->
            Tuple.Hashtbl_t.replace seen row (ref ann);
            order := row :: !order)
        (lrows @ rrows);
      List.rev_map (fun row -> (row, !(Tuple.Hashtbl_t.find seen row))) !order
    | Sql.Ast.Except | Sql.Ast.Intersect ->
      let keep_if_in_right = op = Sql.Ast.Intersect in
      let right_ann = Tuple.Hashtbl_t.create 256 in
      List.iter
        (fun (row, ann) ->
          match Tuple.Hashtbl_t.find_opt right_ann row with
          | Some a -> a := Ids.union !a ann
          | None -> Tuple.Hashtbl_t.replace right_ann row (ref ann))
        rrows;
      let emitted = Tuple.Hashtbl_t.create 256 in
      List.filter_map
        (fun (row, ann) ->
          let in_right = Tuple.Hashtbl_t.mem right_ann row in
          if in_right = keep_if_in_right && not (Tuple.Hashtbl_t.mem emitted row)
          then begin
            Tuple.Hashtbl_t.replace emitted row ();
            let ann =
              if keep_if_in_right then
                Ids.union ann !(Tuple.Hashtbl_t.find right_ann row)
              else ann
            in
            Some (row, ann)
          end
          else None)
        lrows)

(** Accessed IDs of [view] under why-provenance semantics: the union of the
    annotations of the query's output rows. Run this on a plain
    (uninstrumented, unpruned) plan. *)
let accessed ctx ~(view : Sensitive_view.t) (plan : Logical.t) :
    Value.t list =
  let plan = Logical.strip_audits plan in
  let rows = eval_plan ctx view plan in
  List.fold_left (fun acc (_, ann) -> Ids.union acc ann) Ids.empty rows
  |> Ids.elements

(** Annotated result rows (exposed for tests and the provenance-overhead
    ablation benchmark). *)
let run ctx ~view plan = eval_plan ctx view (Logical.strip_audits plan)
