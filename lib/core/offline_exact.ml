(** Exact offline auditing — Definition 2.3 executed literally.

    A tuple [t] of the sensitive table influences query [Q] iff the result
    of [Q] over [D - t] differs from the result over [D]. We evaluate
    [Q(D - t)] by *virtually* hiding the tuple at scan level
    ({!Exec.Exec_ctx.t.hide}), never mutating the database — the moral
    equivalent of the point-in-time rollback the paper says offline systems
    need.

    Complexity is one query execution per candidate, so this is the ground
    truth for tests and small benchmarks; {!Lineage} is the one-pass offline
    auditor used at benchmark scale. Following the paper's architecture
    (Fig. 1), candidates are typically the auditIDs produced by an
    instrumented plan: since the online heuristics have no false negatives,
    verifying only those IDs is sound. *)

open Storage
open Plan

(* Result multisets are compared order-insensitively: ORDER BY ties and
   hash-iteration order may legitimately differ between runs. *)
let canonical rows = List.sort Tuple.compare rows

let results_equal a b =
  List.length a = List.length b
  && List.for_all2 Tuple.equal (canonical a) (canonical b)

(** [influences ctx ~table ~key_idx ~id plan ~baseline] — does deleting the
    rows of [table] whose column [key_idx] equals [id] change the result?
    With a unique partition key this is Definition 2.3 exactly; with a
    non-unique one it deletes the individual's whole partition, the paper's
    per-individual unit of auditing. *)
let influences ctx ~table ~key_idx ~id plan ~baseline =
  let saved = ctx.Exec.Exec_ctx.hide in
  ctx.Exec.Exec_ctx.hide <- Some (table, key_idx, id);
  Fun.protect
    ~finally:(fun () -> ctx.Exec.Exec_ctx.hide <- saved)
    (fun () ->
      let altered =
        Exec.Executor.run_list ctx
          (Plan.Physical.plan_of_logical ~catalog:ctx.Exec.Exec_ctx.catalog
             (Logical.strip_audits plan))
      in
      not (results_equal baseline altered))

(** Exact accessed set among [candidates] (Definition 2.5, with every column
    of the sensitive table treated as sensitive, as in the paper). *)
let accessed ctx ~(view : Sensitive_view.t) ?candidates (plan : Logical.t) :
    Value.t list =
  let plan = Logical.strip_audits plan in
  let table = view.Sensitive_view.expr.Audit_expr.sensitive_table in
  let key_idx = view.Sensitive_view.key_idx in
  let candidates =
    match candidates with Some c -> c | None -> Sensitive_view.to_list view
  in
  let baseline =
    Exec.Executor.run_list ctx
      (Plan.Physical.plan_of_logical ~catalog:ctx.Exec.Exec_ctx.catalog plan)
  in
  List.filter
    (fun id -> influences ctx ~table ~key_idx ~id plan ~baseline)
    candidates
  |> List.sort Value.compare_total
