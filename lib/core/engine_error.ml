(** Typed engine errors.

    One variant per failure class, one [to_string], one carrier exception.
    The legacy stringly exceptions ([Db.Database.Db_error],
    [Exec.Executor.Exec_error]) are kept as thin compatibility wrappers:
    the database facade still surfaces parse/bind/exec failures as
    [Db_error (to_string e)], while the robustness-critical classes —
    [Cancelled], [Log_io], [Fault] — propagate as [Error] so callers can
    match on them without string inspection. *)

type cancel_reason =
  | Timeout  (** wall-clock deadline exceeded *)
  | Row_budget  (** per-query scanned-row budget exceeded *)
  | Memory_budget  (** per-query materialized-tuple budget exceeded *)

type t =
  | Parse of string  (** lexer or parser rejection *)
  | Bind of string  (** name resolution / typing *)
  | Exec of string  (** runtime execution failure *)
  | Audit of string  (** audit expression or operator-placement problem *)
  | Cancelled of { reason : cancel_reason; detail : string }
      (** a query guard aborted execution; the partial ACCESSED set has
          still been audited (no-false-negatives extends to aborted
          queries) *)
  | Log_io of string
      (** an audit-log write or sync failed; under the fail-closed policy
          this withholds the query's results *)
  | Fault of string  (** an injected fault (testing only) *)
  | Verify of string
      (** the plan-invariant verifier rejected an optimized plan in
          [Strict] mode: executing it could break the auditing guarantee *)
  | Internal of string

exception Error of t

let cancel_reason_to_string = function
  | Timeout -> "timeout"
  | Row_budget -> "row budget"
  | Memory_budget -> "memory budget"

let to_string = function
  | Parse m -> "parse error: " ^ m
  | Bind m -> "bind error: " ^ m
  | Exec m -> "execution error: " ^ m
  | Audit m -> "audit error: " ^ m
  | Cancelled { reason; detail } ->
    Printf.sprintf "cancelled (%s): %s" (cancel_reason_to_string reason) detail
  | Log_io m -> "audit-log I/O error: " ^ m
  | Fault m -> "injected fault: " ^ m
  | Verify m -> "plan verification failed: " ^ m
  | Internal m -> "internal error: " ^ m

let raise_ e = raise (Error e)

(** [cancelled (Error e)] when [e] is a guard cancellation. *)
let cancelled = function Error (Cancelled _) -> true | _ -> false
