(** Static-analysis auditing baseline (Oracle Fine Grained Auditing style,
    §VI / Example 6.1).

    Compatibility facade: the analyzer now lives in
    {!Analysis.Fga}, rebuilt on a per-column abstract domain (intervals,
    finite sets, LIKE-prefix ranges, disjunction via hull-widened join,
    equi-join constraint propagation). [analyze] keeps its original
    signature and delegates to the abstract-interpretation analyzer;
    [analyze_legacy] exposes the pre-abstract-domain algorithm for
    differential testing and the §VI false-positive comparison. *)

type verdict = Analysis.Fga.verdict = May_access | No_access

let string_of_verdict = Analysis.Fga.string_of_verdict

let analyze catalog ~(audit : Audit_expr.t) (q : Sql.Ast.query) : verdict =
  Analysis.Fga.analyze catalog
    ~sensitive_table:audit.Audit_expr.sensitive_table
    ~definition:audit.Audit_expr.definition q

let analyze_legacy catalog ~(audit : Audit_expr.t) (q : Sql.Ast.query) : verdict
    =
  Analysis.Fga.analyze_legacy catalog
    ~sensitive_table:audit.Audit_expr.sensitive_table
    ~definition:audit.Audit_expr.definition q
