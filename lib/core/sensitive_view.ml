(** Materialized sensitive-ID views (§IV-A1).

    When an audit expression is declared it is compiled to a materialized
    view containing only the partition-by IDs. The audit operator probes
    this set; because only IDs are stored, probing costs one hash lookup per
    row regardless of how complex the audit expression's predicate is.

    Maintenance mirrors standard materialized-view maintenance:
    - single-table expressions are maintained *incrementally* — the
      predicate is evaluated on each inserted/deleted/updated row of the
      sensitive table;
    - expressions with (key–FK) joins are maintained *conservatively* — a
      change to any referenced table marks the view dirty and the next read
      recomputes it. *)

open Storage

type t = {
  expr : Audit_expr.t;
  catalog : Catalog.t;
  ids : int ref Value.Hashtbl_v.t;
      (** sensitive ID -> generation mark; the value cell doubles as the
          audit operator's ACCESSED mark (see {!Exec.Exec_ctx}) *)
  key_idx : int;  (** partition-key position in the sensitive table *)
  row_pred : Plan.Scalar.t option;
      (** single-table predicate over the sensitive table's schema *)
  mutable dirty : bool;
  mutable maintenance_ops : int;  (** statistics: incremental updates done *)
}

let name t = t.expr.Audit_expr.name

(* Run the ID query and load the hash set. *)
let recompute t =
  Value.Hashtbl_v.reset t.ids;
  let plan =
    Plan.Binder.query t.catalog (Audit_expr.id_query t.expr)
    |> Plan.Optimizer.logical_optimize |> Plan.Optimizer.prune
  in
  let ctx = Exec.Exec_ctx.create t.catalog in
  let rows =
    Exec.Executor.run_list ctx
      (Plan.Physical.plan_of_logical ~catalog:t.catalog plan)
  in
  List.iter
    (fun row ->
      match Tuple.get row 0 with
      | Value.Null -> ()
      | v ->
        if not (Value.Hashtbl_v.mem t.ids v) then
          Value.Hashtbl_v.add t.ids v (ref 0))
    rows;
  t.dirty <- false

let create catalog (expr : Audit_expr.t) : t =
  let table = Catalog.find catalog expr.Audit_expr.sensitive_table in
  let schema = Table.schema table in
  let key_idx = Schema.find schema expr.Audit_expr.partition_by in
  let single = Audit_expr.is_single_table expr in
  let row_pred =
    if not single then None
    else
      match expr.Audit_expr.definition.Sql.Ast.where with
      | None -> Some (Plan.Scalar.Const (Value.Bool true))
      | Some w -> Some (Plan.Binder.scalar catalog schema w)
  in
  let t =
    {
      expr;
      catalog;
      ids = Value.Hashtbl_v.create 1024;
      key_idx;
      row_pred;
      dirty = true;
      maintenance_ops = 0;
    }
  in
  (* Hook the sensitive table for incremental (or dirtying) maintenance. *)
  let eval_ctx = Exec.Exec_ctx.create catalog in
  let satisfies row =
    match t.row_pred with
    | Some p -> Exec.Eval.truthy eval_ctx row p
    | None -> false
  in
  let on_sensitive_change change =
    t.maintenance_ops <- t.maintenance_ops + 1;
    if t.dirty then ()
    else if t.row_pred = None then t.dirty <- true
    else
      match change with
      | Table.Inserted row ->
        if satisfies row then begin
          let id = Tuple.get row t.key_idx in
          if not (Value.Hashtbl_v.mem t.ids id) then
            Value.Hashtbl_v.add t.ids id (ref 0)
        end
      | Table.Deleted row ->
        if satisfies row then
          Value.Hashtbl_v.remove t.ids (Tuple.get row t.key_idx)
      | Table.Updated { before; after } ->
        if satisfies before then
          Value.Hashtbl_v.remove t.ids (Tuple.get before t.key_idx);
        if satisfies after then begin
          let id = Tuple.get after t.key_idx in
          if not (Value.Hashtbl_v.mem t.ids id) then
            Value.Hashtbl_v.add t.ids id (ref 0)
        end
  in
  Table.on_change table on_sensitive_change;
  (* Other referenced tables only dirty the view. *)
  List.iter
    (fun tname ->
      if not (Schema.equal_names tname expr.Audit_expr.sensitive_table) then
        match Catalog.find_opt catalog tname with
        | Some tb -> Table.on_change tb (fun _ -> t.dirty <- true)
        | None -> ())
    (Audit_expr.referenced_tables expr);
  recompute t;
  t

let refresh t = if t.dirty then recompute t

(** The ID set, refreshed if stale. The audit operator probes this. *)
let ids t =
  refresh t;
  t.ids

let cardinality t = Value.Hashtbl_v.length (ids t)
let contains t v = Value.Hashtbl_v.mem (ids t) v

let to_list t =
  Value.Hashtbl_v.fold (fun v _ acc -> v :: acc) (ids t) []
  |> List.sort Value.compare_total
