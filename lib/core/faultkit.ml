(** Deterministic fault injection.

    A fault plan is a list of {e points}, armed on the kit carried by the
    execution context ([Exec_ctx.faults]) and consulted from the
    instrumented code paths:

    - [Op_next]: the Nth [getNext] call of a matching operator raises
      {!Fault_injected} (patterns match case-insensitively as substrings of
      the operator's display label, ["*"] matches every operator);
    - [Log_io]: the Nth audit-log append fails with the given I/O fault
      (short write, ENOSPC, crash before fsync);
    - [Trigger_body]: entering a matching trigger's body raises.

    Every point fires at most once per arming, so a test can assert that
    the query after the fault runs clean without disarming. [random_plan]
    derives a plan from a seed for the fault-matrix property tests; the
    same seed always yields the same plan. *)

exception Fault_injected of string

type io_fault =
  | Short_write of int  (** write only the first [n] bytes of the frame *)
  | Enospc  (** write nothing, fail as if the device were full *)
  | Crash_before_sync
      (** write a torn prefix of the frame, then kill the log handle —
          simulates process death between write and fsync *)

type point =
  | Op_next of { op : string; at : int }
  | Log_io of { at : int; fault : io_fault }
  | Trigger_body of { name : string }

type armed_point = { point : point; mutable count : int; mutable spent : bool }

type t = {
  mutable plan : armed_point list;
  mutable fired : string list;  (** descriptions of fired points, oldest first *)
}

let create () = { plan = []; fired = [] }

let io_fault_to_string = function
  | Short_write n -> Printf.sprintf "short write (%d bytes)" n
  | Enospc -> "ENOSPC"
  | Crash_before_sync -> "crash before fsync"

let point_to_string = function
  | Op_next { op; at } -> Printf.sprintf "getNext #%d of operator %S" at op
  | Log_io { at; fault } ->
    Printf.sprintf "audit-log append #%d: %s" at (io_fault_to_string fault)
  | Trigger_body { name } -> Printf.sprintf "trigger body %S" name

let arm t points =
  t.plan <- List.map (fun p -> { point = p; count = 0; spent = false }) points;
  t.fired <- []

let disarm t =
  t.plan <- [];
  t.fired <- []

let armed t = List.exists (fun a -> not a.spent) t.plan
let armed_points t = List.map (fun a -> a.point) t.plan
let fired t = List.rev t.fired
let note_fired t a = t.fired <- point_to_string a.point :: t.fired

let matches pat label =
  pat = "*"
  ||
  let pat = String.lowercase_ascii pat
  and label = String.lowercase_ascii label in
  let np = String.length pat and nl = String.length label in
  let rec go i = i + np <= nl && (String.sub label i np = pat || go (i + 1)) in
  np > 0 && go 0

(** Consulted once per [getNext] of a compiled operator. *)
let on_get_next t ~op =
  List.iter
    (fun a ->
      match a.point with
      | Op_next { op = pat; at } when (not a.spent) && matches pat op ->
        a.count <- a.count + 1;
        if a.count >= at then begin
          a.spent <- true;
          note_fired t a;
          raise
            (Fault_injected
               (Printf.sprintf "getNext #%d of %s" at op))
        end
      | _ -> ())
    t.plan

(** Consulted once per audit-log append; returns the I/O fault to apply. *)
let on_log_append t : io_fault option =
  let rec go = function
    | [] -> None
    | a :: rest -> (
      match a.point with
      | Log_io { at; fault } when not a.spent ->
        a.count <- a.count + 1;
        if a.count >= at then begin
          a.spent <- true;
          note_fired t a;
          Some fault
        end
        else go rest
      | _ -> go rest)
  in
  go t.plan

(** Consulted on entry to a trigger body. *)
let on_trigger t ~name =
  List.iter
    (fun a ->
      match a.point with
      | Trigger_body { name = pat } when (not a.spent) && matches pat name ->
        a.spent <- true;
        note_fired t a;
        raise (Fault_injected (Printf.sprintf "trigger body %s" name))
      | _ -> ())
    t.plan

(* ------------------------------------------------------------------ *)
(* Seeded plans (fault-matrix property tests)                          *)
(* ------------------------------------------------------------------ *)

(** Deterministic fault plan for [seed]: zero to two operator faults drawn
    from [ops], sometimes an audit-log I/O fault. Seed 0 is always the
    empty (fault-free) plan, anchoring the matrix's baseline. *)
let random_plan ~seed ~ops : point list =
  if seed = 0 then []
  else begin
    let st = Random.State.make [| 0x5e1ec7; seed |] in
    let pick l = List.nth l (Random.State.int st (List.length l)) in
    let plan = ref [] in
    let n_ops = if ops = [] then 0 else 1 + Random.State.int st 2 in
    for _ = 1 to n_ops do
      plan :=
        Op_next { op = pick ops; at = 1 + Random.State.int st 8 } :: !plan
    done;
    if Random.State.int st 3 = 0 then
      plan :=
        Log_io
          {
            at = 1 + Random.State.int st 3;
            fault = pick [ Short_write 3; Enospc; Crash_before_sync ];
          }
        :: !plan;
    !plan
  end
