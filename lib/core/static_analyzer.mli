(** Static-analysis auditing baseline (Oracle Fine Grained Auditing style,
    §VI / Example 6.1): flag a query iff its selection condition on the
    sensitive table can logically intersect the audit expression's
    condition. Instance-independent, cheap, and false-positive-prone —
    exactly the behaviour the paper contrasts audit operators against.

    This is a compatibility facade over {!Analysis.Fga}. *)

type verdict = Analysis.Fga.verdict = May_access | No_access

val string_of_verdict : verdict -> string

(** Abstract-interpretation constraint-intersection test (see
    {!Analysis.Fga.analyze}). Anything the analyzer cannot interpret
    leaves the column unconstrained, i.e. errs toward {!May_access}. *)
val analyze :
  Storage.Catalog.t -> audit:Audit_expr.t -> Sql.Ast.query -> verdict

(** The pre-abstract-domain analyzer (top-level WHERE atoms only; opaque on
    LIKE, disjunction, arithmetic, join transfer; UNION branches ignored —
    an unsoundness {!analyze} fixes by checking every set-op component),
    kept for differential tests and the §VI comparison. On set-op-free
    queries, never more precise than {!analyze}. *)
val analyze_legacy :
  Storage.Catalog.t -> audit:Audit_expr.t -> Sql.Ast.query -> verdict
