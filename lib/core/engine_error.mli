(** Typed engine errors: one variant per failure class, a single
    [to_string], and the [Error] carrier exception. The robustness-critical
    classes ([Cancelled], [Log_io], [Fault]) propagate typed out of
    [Db.Database.exec]; the legacy classes are re-surfaced as
    [Db_error (to_string e)] for compatibility. *)

type cancel_reason =
  | Timeout  (** wall-clock deadline exceeded *)
  | Row_budget  (** per-query scanned-row budget exceeded *)
  | Memory_budget  (** per-query materialized-tuple budget exceeded *)

type t =
  | Parse of string
  | Bind of string
  | Exec of string
  | Audit of string
  | Cancelled of { reason : cancel_reason; detail : string }
  | Log_io of string
  | Fault of string
  | Verify of string
      (** the plan-invariant verifier rejected an optimized plan in
          [Strict] mode *)
  | Internal of string

exception Error of t

val cancel_reason_to_string : cancel_reason -> string
val to_string : t -> string

(** [raise (Error e)]. *)
val raise_ : t -> 'a

(** Is this exception a guard cancellation? *)
val cancelled : exn -> bool
