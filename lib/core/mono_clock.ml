(** Monotonic clock source.

    [Unix.gettimeofday] follows the wall clock, which NTP and manual
    adjustment can step backwards — a deadline armed before a step would
    never fire, and operator timings could come out negative. The stdlib
    exposes no monotonic clock, so this module derives one: every backward
    step of the wall clock is absorbed into a cumulative offset, making
    [now] non-decreasing (and still advancing at wall rate between steps).

    The epoch is arbitrary: only differences of [now] readings are
    meaningful. Single-session engine, so no locking. *)

let last_raw = ref (Unix.gettimeofday ())
let offset = ref 0.0

(** Seconds on a non-decreasing clock (arbitrary epoch). *)
let now () =
  let t = Unix.gettimeofday () in
  if t < !last_raw then offset := !offset +. (!last_raw -. t);
  last_raw := t;
  t +. !offset
