(** Deterministic fault injection: arm a plan of fault points on the kit
    carried by the execution context; the executor, the audit log, and the
    trigger machinery consult it at their instrumented sites. Every point
    fires at most once per arming. *)

exception Fault_injected of string

type io_fault =
  | Short_write of int  (** write only the first [n] bytes of the frame *)
  | Enospc  (** write nothing, fail as if the device were full *)
  | Crash_before_sync
      (** write a torn prefix of the frame, then kill the log handle *)

type point =
  | Op_next of { op : string; at : int }
      (** fail the [at]-th [getNext] of operators whose label matches [op]
          (case-insensitive substring; ["*"] matches all) *)
  | Log_io of { at : int; fault : io_fault }
      (** fail the [at]-th audit-log append *)
  | Trigger_body of { name : string }
      (** raise on entry to a matching trigger's body *)

type t

val create : unit -> t

(** Install a fresh plan (resetting counters and the fired list). *)
val arm : t -> point list -> unit

val disarm : t -> unit

(** Any point still live? *)
val armed : t -> bool

val armed_points : t -> point list

(** Descriptions of the points that fired, oldest first. *)
val fired : t -> string list

val io_fault_to_string : io_fault -> string
val point_to_string : point -> string

(** Raises {!Fault_injected} when an [Op_next] point triggers. *)
val on_get_next : t -> op:string -> unit

(** Returns the I/O fault to apply to this append, if one triggers. *)
val on_log_append : t -> io_fault option

(** Raises {!Fault_injected} when a [Trigger_body] point triggers. *)
val on_trigger : t -> name:string -> unit

(** Deterministic plan for a seed (seed 0 = fault-free baseline). *)
val random_plan : seed:int -> ops:string list -> point list
