(** Vectorized (batch-at-a-time) execution of physical plans.

    The batch engine mirrors {!Executor} operator by operator but moves
    the getNext interface from [Tuple.t option] to [Batch.t option]: a
    scan fills chunks of up to {!Batch.chunk_size} rows, filters refine
    each chunk's selection vector in place, and the remaining operators
    work on whole chunks. Semantics are identical to the row engine —
    same emission order, same 3VL/NULL behaviour (expressions come from
    the same {!Expr_compile}), same audit-operator guarantees — which the
    differential harness ([test/test_batch_diff.ml]) enforces.

    Operators without batch kernels — [Apply] (correlated parameter
    protocol), [Nl_join]/[Index_nl_join]/[Hash_semi_join] (per-row probe
    loops) and [Limit] (early termination must stop the *row* stream
    mid-chunk, or an audit operator below the limit would record more
    accesses than the row engine) — delegate their whole subtree to the
    row executor behind a row→batch adapter, so every plan executes.

    [Filter] directly over [Seq_scan] fuses into a late-materialization
    kernel: the predicate is remapped through the scan projection and run
    on raw table rows, and only survivors are projected — the per-row
    materialization cost of filtered-out rows disappears.

    Budget accounting: with no row budget armed the scan charges each
    chunk in O(1) ({!Exec_ctx.note_scanned_many}); with one armed it
    falls back to per-row {!Exec_ctx.note_scanned}, and a budget trip
    mid-chunk emits the partial chunk first and re-raises on the next
    call — downstream audit operators see exactly the rows the row engine
    would have shown them before cancelling, and [rows_scanned] at
    cancellation is identical in both modes. *)

open Storage
open Plan

type bcursor = unit -> Batch.t option
type bfactory = unit -> bcursor

let cancelled = function
  | Engine_core.Engine_error.Error (Engine_core.Engine_error.Cancelled _) ->
    true
  | _ -> false

(* Re-chunk a row cursor (a delegated row-engine subtree) into batches.
   Each chunk is a fresh minor-heap array so the (usually young) tuples
   it buffers die with it instead of being promoted out of a reused
   major-heap buffer. *)
let batch_of_rows (c : Executor.cursor) : bcursor =
  fun () ->
    match c () with
    | None -> None
    | Some first ->
      let buf = Array.make Batch.chunk_size [||] in
      buf.(0) <- first;
      let n = ref 1 in
      let continue_ = ref true in
      while !continue_ && !n < Batch.chunk_size do
        match c () with
        | None -> continue_ := false
        | Some r ->
          buf.(!n) <- r;
          incr n
      done;
      Some (Batch.of_array buf !n)

(* Emit a materialized row list (sort/aggregation output) in fresh
   chunks. *)
let emit_rows (rows : Tuple.t list) : bcursor =
  let remaining = ref rows in
  fun () ->
    match !remaining with
    | [] -> None
    | _ ->
      let buf = Array.make Batch.chunk_size [||] in
      let n = ref 0 in
      let continue_ = ref true in
      while !continue_ && !n < Batch.chunk_size do
        match !remaining with
        | [] -> continue_ := false
        | r :: rest ->
          buf.(!n) <- r;
          incr n;
          remaining := rest
      done;
      Some (Batch.of_array buf !n)

(* Drain a batch cursor into a buffer a blocking operator will hold live,
   charging each tuple against the memory budget (same per-row accounting
   as the row engine's [drain_tracked]). *)
let drain_tracked ctx (c : bcursor) : Tuple.t list =
  let acc = ref [] in
  let rec go () =
    match c () with
    | None -> ()
    | Some b ->
      Batch.iter
        (fun r ->
          Exec_ctx.note_materialized ctx;
          acc := r :: !acc)
        b;
      go ()
  in
  go ();
  List.rev !acc

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | r :: rest -> r :: take (n - 1) rest

let resolve_table ctx table =
  match Catalog.find_opt ctx.Exec_ctx.catalog table with
  | Some t -> t
  | None -> raise (Executor.Exec_error (Printf.sprintf "unknown table %s" table))

(* The (column, value) pair virtually deleted from scans of [table], if
   the offline auditor armed one (Q(D - t), Definition 2.3). *)
let hide_for ctx table =
  match ctx.Exec_ctx.hide with
  | Some (ht, col, v)
    when String.lowercase_ascii ht = String.lowercase_ascii table ->
    Some (col, v)
  | _ -> None

(* Metrics + guard wrapper, mirroring the row engine's [compile]: counted
   per batch call (rows accumulate by batch length), registration in plan
   pre-order. Operators whose subtree delegates to the row executor are
   *not* wrapped here — the row engine instruments them itself. *)
let rec compile (ctx : Exec_ctx.t) (plan : Physical.t) : bfactory =
  match plan.Physical.op with
  | Physical.Apply _ | Physical.Nl_join _ | Physical.Index_nl_join _
  | Physical.Hash_semi_join _ | Physical.Limit _ ->
    let f = Executor.compile ctx plan in
    fun () -> batch_of_rows (f ())
  | _ ->
    let base =
      if not (Metrics.enabled ctx.Exec_ctx.metrics) then compile_op ctx plan
      else begin
        let st = Metrics.register ctx.Exec_ctx.metrics plan in
        let f = compile_op ctx plan in
        fun () ->
          st.Metrics.opens <- st.Metrics.opens + 1;
          let c = f () in
          fun () ->
            let t0 = Metrics.now_s () in
            let r = c () in
            st.Metrics.time_s <- st.Metrics.time_s +. (Metrics.now_s () -. t0);
            st.Metrics.calls <- st.Metrics.calls + 1;
            (match r with
            | Some b ->
              st.Metrics.batches <- st.Metrics.batches + 1;
              st.Metrics.rows <- st.Metrics.rows + Batch.length b
            | None -> ());
            r
      end
    in
    let faults_armed = Engine_core.Faultkit.armed ctx.Exec_ctx.faults in
    if not (Exec_ctx.guards_armed ctx || faults_armed) then base
    else begin
      let label = Physical.label plan in
      fun () ->
        Exec_ctx.check_deadline ctx;
        let c = base () in
        fun () ->
          if faults_armed then
            Engine_core.Faultkit.on_get_next ctx.Exec_ctx.faults ~op:label;
          (* A batch call covers up to [chunk_size] rows, so the every-16th
             -tick guard would be far too coarse: check the deadline on
             every call instead. *)
          Exec_ctx.check_deadline ctx;
          c ()
    end

and compile_op (ctx : Exec_ctx.t) (plan : Physical.t) : bfactory =
  match plan.Physical.op with
  | Physical.Apply _ | Physical.Nl_join _ | Physical.Index_nl_join _
  | Physical.Hash_semi_join _ | Physical.Limit _ ->
    (* Handled by the row-engine adapter in [compile]. *)
    assert false
  | Physical.Seq_scan { table; cols; _ } -> compile_scan ctx table cols
  | Physical.Filter
      { pred; child = { Physical.op = Physical.Seq_scan { table; cols; _ }; _ }
                      as scan }
    when table <> "$dual"
         && not (Engine_core.Faultkit.armed ctx.Exec_ctx.faults) ->
    (* Late materialization: fill raw table rows, filter them, and apply
       the scan projection to the survivors only (the row engine must
       project every row before its filter can look at it). Skipped when
       fault injection is armed so per-operator fault sites stay
       identical to the row engine's. *)
    compile_filter_scan ctx ~scan ~table ~cols pred
  | Physical.Filter { pred; child } ->
    let cf = compile ctx child in
    let refine = Expr_compile.compile_pred_batch ctx pred in
    fun () ->
      let c = cf () in
      let rec next () =
        match c () with
        | None -> None
        | Some b ->
          refine b;
          if Batch.length b = 0 then next () else Some b
      in
      next
  | Physical.Project { cols; child } ->
    let cf = compile ctx child in
    let proj = Expr_compile.compile_project_batch ctx (List.map fst cols) in
    fun () ->
      let c = cf () in
      fun () -> Option.map proj (c ())
  | Physical.Hash_join { kind; lkeys; rkeys; residual; left; right; right_arity }
    ->
    compile_hash_join ctx kind ~lkeys ~rkeys ~residual ~left ~right
      ~right_arity
  | Physical.Hash_agg { keys; aggs; child } -> compile_group ctx keys aggs child
  | Physical.Sort { keys; child } ->
    let cf = compile ctx child in
    let sort_rows = Executor.compile_sorter ctx keys in
    fun () -> emit_rows (sort_rows (drain_tracked ctx (cf ())))
  | Physical.Top_k { n; keys; child } ->
    (* Fused Limit-over-Sort drains its child completely in both engines,
       so unlike a bare Limit it is safe to run batch-native. *)
    let cf = compile ctx child in
    let sort_rows = Executor.compile_sorter ctx keys in
    fun () -> emit_rows (take n (sort_rows (drain_tracked ctx (cf ()))))
  | Physical.Distinct child ->
    let cf = compile ctx child in
    fun () ->
      let c = cf () in
      let seen = Tuple.Hashtbl_t.create 256 in
      let dedup row =
        if Tuple.Hashtbl_t.mem seen row then false
        else begin
          Tuple.Hashtbl_t.replace seen row ();
          true
        end
      in
      let rec next () =
        match c () with
        | None -> None
        | Some b ->
          Batch.refine dedup b;
          if Batch.length b = 0 then next () else Some b
      in
      next
  | Physical.Set_op { op; left; right } -> compile_set_op ctx op left right
  | Physical.Audit_probe { audit_name; id_col; child } ->
    let cf = compile ctx child in
    let name = String.lowercase_ascii audit_name in
    let st = Metrics.find ctx.Exec_ctx.metrics plan in
    fun () ->
      let sensitive =
        match Exec_ctx.audit_ids ctx ~audit_name:name with
        | Some s -> s
        | None ->
          raise
            (Executor.Exec_error
               (Printf.sprintf
                  "audit operator for %s: sensitive-ID set not installed"
                  audit_name))
      in
      let c = cf () in
      fun () ->
        match c () with
        | None -> None
        | Some b ->
          (* The probe loop runs over the whole chunk: one hash probe per
             selected row, marking hits with the query generation. The
             batch passes through unmodified — the no-filtering invariant
             (§IV-A2) holds per chunk exactly as it does per row. *)
          Batch.iter
            (fun row ->
              ctx.Exec_ctx.audit_probes <- ctx.Exec_ctx.audit_probes + 1;
              (match st with
              | Some s -> s.Metrics.probes <- s.Metrics.probes + 1
              | None -> ());
              match Value.Hashtbl_v.find_opt sensitive row.(id_col) with
              | Some mark ->
                ctx.Exec_ctx.audit_hits <- ctx.Exec_ctx.audit_hits + 1;
                (match st with
                | Some s -> s.Metrics.hits <- s.Metrics.hits + 1
                | None -> ());
                if !mark <> ctx.Exec_ctx.generation then
                  mark := ctx.Exec_ctx.generation
              | None -> ())
            b;
          Some b

and compile_scan ctx table cols : bfactory =
  if table = "$dual" then (fun () ->
    let done_ = ref false in
    fun () ->
      if !done_ then None
      else begin
        done_ := true;
        Some (Batch.dense [| [||] |])
      end)
  else
    let project row =
      match cols with None -> row | Some idxs -> Tuple.project row idxs
    in
    fun () ->
      let t = resolve_table ctx table in
      let hide = hide_for ctx table in
      (* A budget trip mid-chunk must not swallow the rows already filled:
         they were charged, and in row mode they would have reached the
         operators above (including audit probes) before the cancelling
         row. Emit the partial chunk and re-raise on the next call. *)
      let pending = ref None in
      let b = Batch.create () in
      let buf = b.Batch.rows in
      let reraise_or_end () =
        match !pending with
        | Some e ->
          pending := None;
          raise e
        | None -> None
      in
      let emit n =
        if n = 0 then reraise_or_end ()
        else begin
          Batch.refill b n;
          Some b
        end
      in
      match hide with
      | None ->
        (* Bulk path: copy live slots straight into the chunk (no per-row
           cursor closure or option), charge the whole chunk against the
           scan counter in O(1), then apply the scan projection in a tight
           loop. Only when a row budget is armed does the charge fall back
           to per-row [note_scanned], so the budget cancels at exactly the
           same row as the row engine. *)
        let slot = ref 0 in
        fun () ->
          (match !pending with
          | Some e ->
            pending := None;
            raise e
          | None -> ());
          let filled = Table.fill_chunk t ~slot buf ~max:Batch.chunk_size in
          if filled = 0 then None
          else begin
            let n = ref filled in
            (match ctx.Exec_ctx.row_budget with
            | None -> Exec_ctx.note_scanned_many ctx filled
            | Some _ ->
              n := 0;
              (try
                 while !n < filled do
                   Exec_ctx.note_scanned ctx;
                   incr n
                 done
               with e when cancelled e -> pending := Some e));
            (match cols with
            | None -> ()
            | Some idxs ->
              for i = 0 to !n - 1 do
                Array.unsafe_set buf i
                  (Tuple.project (Array.unsafe_get buf i) idxs)
              done);
            emit !n
          end
      | Some _ ->
        let c = Table.cursor ?hide t in
        fun () ->
          (match !pending with
          | Some e ->
            pending := None;
            raise e
          | None -> ());
          match c () with
          | None -> None
          | Some first ->
            let n = ref 0 in
            (try
               Exec_ctx.note_scanned ctx;
               buf.(0) <- project first;
               n := 1;
               let continue_ = ref true in
               while !continue_ && !n < Batch.chunk_size do
                 match c () with
                 | None -> continue_ := false
                 | Some r ->
                   Exec_ctx.note_scanned ctx;
                   buf.(!n) <- project r;
                   incr n
               done
             with e when cancelled e -> pending := Some e);
            emit !n

(* Fused Filter-over-Seq_scan: the vectorized engine's late-
   materialization kernel. The predicate is remapped through the scan
   projection so it evaluates on raw table rows; each chunk is filled in
   bulk, refined, and only the surviving rows are projected. Semantics —
   survivors, emission order, [rows_scanned], budget-cancellation row —
   are exactly those of the unfused Filter→Seq_scan pair; only the
   per-row projection work on filtered-out rows disappears. The scan
   node keeps its own metrics entry (rows = rows scanned, as in the row
   engine) even though it no longer exists as a separate operator. *)
and compile_filter_scan ctx ~scan ~table ~cols pred : bfactory =
  let raw_pred =
    match cols with
    | None -> pred
    | Some idxs -> Scalar.shift_cols (fun i -> idxs.(i)) pred
  in
  let test = Expr_compile.compile_pred ctx raw_pred in
  let st =
    if Metrics.enabled ctx.Exec_ctx.metrics then
      Some (Metrics.register ctx.Exec_ctx.metrics scan)
    else None
  in
  fun () ->
    let t = resolve_table ctx table in
    let hide = hide_for ctx table in
    let pending = ref None in
    let raw = Batch.create () in
    let rbuf = raw.Batch.rows in
    (match st with
    | Some s -> s.Metrics.opens <- s.Metrics.opens + 1
    | None -> ());
    (* Fill [rbuf] with raw rows and charge the scan budget; returns the
       charged count. A budget trip mid-chunk keeps the charged prefix
       and parks the exception in [pending]. *)
    let fill =
      match hide with
      | None ->
        let slot = ref 0 in
        fun () ->
          let filled = Table.fill_chunk t ~slot rbuf ~max:Batch.chunk_size in
          if filled = 0 then 0
          else begin
            match ctx.Exec_ctx.row_budget with
            | None ->
              Exec_ctx.note_scanned_many ctx filled;
              filled
            | Some _ ->
              let n = ref 0 in
              (try
                 while !n < filled do
                   Exec_ctx.note_scanned ctx;
                   incr n
                 done
               with e when cancelled e -> pending := Some e);
              !n
          end
      | Some _ ->
        let c = Table.cursor ?hide t in
        fun () ->
          let n = ref 0 in
          (try
             let continue_ = ref true in
             while !continue_ && !n < Batch.chunk_size do
               match c () with
               | None -> continue_ := false
               | Some r ->
                 Exec_ctx.note_scanned ctx;
                 rbuf.(!n) <- r;
                 incr n
             done
           with e when cancelled e -> pending := Some e);
          !n
    in
    let reraise_or_end () =
      match !pending with
      | Some e ->
        pending := None;
        raise e
      | None -> None
    in
    let rec next () =
      match !pending with
      | Some e ->
        pending := None;
        raise e
      | None ->
        let t0 = match st with None -> 0.0 | Some _ -> Metrics.now_s () in
        let filled = fill () in
        (match st with
        | Some s ->
          s.Metrics.time_s <- s.Metrics.time_s +. (Metrics.now_s () -. t0);
          s.Metrics.calls <- s.Metrics.calls + 1;
          if filled > 0 then begin
            s.Metrics.batches <- s.Metrics.batches + 1;
            s.Metrics.rows <- s.Metrics.rows + filled
          end
        | None -> ());
        if filled = 0 then reraise_or_end ()
        else begin
          Batch.refill raw filled;
          Batch.refine test raw;
          let k = Batch.length raw in
          if k = 0 then
            (* Nothing survived this chunk: re-raise a parked budget trip
               now (nothing is owed downstream), else keep scanning. *)
            match !pending with
            | Some e ->
              pending := None;
              raise e
            | None -> next ()
          else begin
            match cols with
            | None -> Some raw
            | Some idxs ->
              (* Fresh (minor-heap) output chunk: survivors' projected
                 tuples die young with it, where a reused major-heap
                 buffer would force their promotion. *)
              let orows = Array.make k [||] in
              for i = 0 to k - 1 do
                Array.unsafe_set orows i (Tuple.project (Batch.get raw i) idxs)
              done;
              Some (Batch.dense orows)
          end
        end
    in
    next

and compile_hash_join ctx kind ~lkeys ~rkeys ~residual ~left ~right
    ~right_arity : bfactory =
  let lf = compile ctx left in
  let rf = compile ctx right in
  let lkeys = Array.map (Expr_compile.compile ctx) lkeys in
  let rkeys = Array.map (Expr_compile.compile ctx) rkeys in
  let residual = Option.map (Expr_compile.compile_pred ctx) residual in
  let null_pad = Array.make right_arity Value.Null in
  fun () ->
    (* Build: drain the right child's batches into the hash table, keyed
       and null-skipped exactly like the row engine. *)
    let rc = rf () in
    let tbl = Tuple.Hashtbl_t.create 1024 in
    let rec build () =
      match rc () with
      | None -> ()
      | Some b ->
        Batch.iter
          (fun row ->
            Exec_ctx.note_materialized ctx;
            let k = Array.map (fun f -> f row) rkeys in
            if not (Array.exists Value.is_null k) then
              Tuple.Hashtbl_t.replace tbl k
                (row :: (try Tuple.Hashtbl_t.find tbl k with Not_found -> [])))
          b;
        build ()
    in
    build ();
    (* Probe: one output batch per input batch (size varies with the join
       fan-out; dense, in probe order — identical to the row engine's
       emission order). *)
    let lc = lf () in
    (* Join fan-out can push one input batch's output far past
       [chunk_size], so matches are flushed into a queue of fresh
       chunk-sized (minor-heap) batches as they are produced — joined
       tuples die young with their chunk, and emission order stays the
       row engine's probe order. *)
    let queue = ref [] in
    let rec next () =
      match !queue with
      | b :: rest ->
        queue := rest;
        Some b
      | [] -> (
        match lc () with
        | None -> None
        | Some b ->
          let chunks = ref [] in
          let buf = ref (Array.make Batch.chunk_size [||]) in
          let n = ref 0 in
          let push r =
            if !n = Batch.chunk_size then begin
              chunks := Batch.dense !buf :: !chunks;
              buf := Array.make Batch.chunk_size [||];
              n := 0
            end;
            Array.unsafe_set !buf !n r;
            incr n
          in
          Batch.iter
            (fun lrow ->
              let k = Array.map (fun f -> f lrow) lkeys in
              let cands =
                if Array.exists Value.is_null k then []
                else
                  match Tuple.Hashtbl_t.find_opt tbl k with
                  | Some rows -> List.rev rows
                  | None -> []
              in
              let matched = ref false in
              List.iter
                (fun rrow ->
                  let combined = Tuple.append lrow rrow in
                  let keep =
                    match residual with None -> true | Some test -> test combined
                  in
                  if keep then begin
                    matched := true;
                    push combined
                  end)
                cands;
              if (not !matched) && kind = Logical.J_left then
                push (Tuple.append lrow null_pad))
            b;
          if !n > 0 then chunks := Batch.of_array !buf !n :: !chunks;
          match List.rev !chunks with
          | [] -> next ()
          | c :: rest ->
            queue := rest;
            Some c)
    in
    next

and compile_group ctx keys aggs child : bfactory =
  let cf = compile ctx child in
  let key_exprs =
    Array.of_list (List.map (fun (e, _) -> Expr_compile.compile ctx e) keys)
  in
  let agg_list = Array.of_list aggs in
  let agg_args =
    Array.map
      (fun a -> Option.map (Expr_compile.compile ctx) a.Logical.arg)
      agg_list
  in
  if keys = [] then (
    (* Scalar aggregation: one state vector in locals — the batch loop
       skips the per-row group-key build and hash probe entirely (the row
       engine cannot: its per-row protocol keeps state behind the same
       hash table as the grouped path). *)
    let nagg = Array.length agg_list in
    fun () ->
      let c = cf () in
      let states = Array.map Aggregate.create agg_list in
      let seen = ref false in
      let consume_row row =
        Array.iteri
          (fun i st ->
            let v =
              match agg_args.(i) with None -> None | Some f -> Some (f row)
            in
            Aggregate.update st v)
          states
      in
      let rec consume () =
        match c () with
        | None -> ()
        | Some b ->
          if Batch.length b > 0 then begin
            if not !seen then begin
              seen := true;
              Exec_ctx.note_materialized ctx
            end;
            (* COUNT(<star>)-style states (no argument) advance by the
               batch length in O(1); anything else updates per row. *)
            if Array.for_all Option.is_none agg_args then
              for i = 0 to nagg - 1 do
                Aggregate.update_many states.(i) (Batch.length b)
              done
            else Batch.iter consume_row b
          end;
          consume ()
      in
      consume ();
      emit_rows [ Array.map Aggregate.final states ])
  else
  fun () ->
    let c = cf () in
    let groups : Aggregate.state array Tuple.Hashtbl_t.t =
      Tuple.Hashtbl_t.create 256
    in
    let order = ref [] in
    let consume_row row =
      let k = Array.map (fun f -> f row) key_exprs in
      let states =
        match Tuple.Hashtbl_t.find_opt groups k with
        | Some s -> s
        | None ->
          Exec_ctx.note_materialized ctx;
          let s = Array.map Aggregate.create agg_list in
          Tuple.Hashtbl_t.replace groups k s;
          order := k :: !order;
          s
      in
      Array.iteri
        (fun i st ->
          let v =
            match agg_args.(i) with None -> None | Some f -> Some (f row)
          in
          Aggregate.update st v)
        states
    in
    let rec consume () =
      match c () with
      | None -> ()
      | Some b ->
        Batch.iter consume_row b;
        consume ()
    in
    consume ();
    let emit k =
      let states = Tuple.Hashtbl_t.find groups k in
      Tuple.append k (Array.map Aggregate.final states)
    in
    let pending =
      if Array.length key_exprs = 0 && Tuple.Hashtbl_t.length groups = 0 then begin
        (* Scalar aggregate over empty input: one default row. *)
        let states = Array.map Aggregate.create agg_list in
        [ Array.map Aggregate.final states ]
      end
      else List.rev_map emit !order
    in
    emit_rows pending

and compile_set_op ctx op left right : bfactory =
  let lf = compile ctx left in
  let rf = compile ctx right in
  match op with
  | Sql.Ast.Union_all ->
    fun () ->
      let lc = lf () in
      let rc = rf () in
      let on_left = ref true in
      let rec next () =
        if !on_left then
          match lc () with
          | Some b -> Some b
          | None ->
            on_left := false;
            next ()
        else rc ()
      in
      next
  | Sql.Ast.Union ->
    fun () ->
      let seen = Tuple.Hashtbl_t.create 256 in
      let dedup row =
        if Tuple.Hashtbl_t.mem seen row then false
        else begin
          Tuple.Hashtbl_t.replace seen row ();
          true
        end
      in
      let lc = lf () in
      let rc = rf () in
      let on_left = ref true in
      let rec next () =
        let candidate =
          if !on_left then
            match lc () with
            | Some b -> Some b
            | None ->
              on_left := false;
              rc ()
          else rc ()
        in
        match candidate with
        | None -> None
        | Some b ->
          Batch.refine dedup b;
          if Batch.length b = 0 then next () else Some b
      in
      next
  | Sql.Ast.Except | Sql.Ast.Intersect ->
    let keep_if_in_right = op = Sql.Ast.Intersect in
    fun () ->
      let right_set = Tuple.Hashtbl_t.create 256 in
      let rc = rf () in
      let rec build () =
        match rc () with
        | None -> ()
        | Some b ->
          Batch.iter
            (fun r ->
              Exec_ctx.note_materialized ctx;
              Tuple.Hashtbl_t.replace right_set r ())
            b;
          build ()
      in
      build ();
      let emitted = Tuple.Hashtbl_t.create 256 in
      let keep row =
        if
          Tuple.Hashtbl_t.mem right_set row = keep_if_in_right
          && not (Tuple.Hashtbl_t.mem emitted row)
        then begin
          Tuple.Hashtbl_t.replace emitted row ();
          true
        end
        else false
      in
      let lc = lf () in
      let rec next () =
        match lc () with
        | None -> None
        | Some b ->
          Batch.refine keep b;
          if Batch.length b = 0 then next () else Some b
      in
      next

(* ------------------------------------------------------------------ *)
(* Convenience entry points                                            *)
(* ------------------------------------------------------------------ *)

(** Compile and run under the batch engine, materializing all rows. *)
let run_list ctx plan : Tuple.t list =
  let c = compile ctx plan () in
  let acc = ref [] in
  let rec go () =
    match c () with
    | None -> ()
    | Some b ->
      Batch.iter (fun r -> acc := r :: !acc) b;
      go ()
  in
  go ();
  List.rev !acc

(** Compile and run, counting rows without materializing (benchmarks). *)
let run_count ctx plan : int =
  let c = compile ctx plan () in
  let rec go n =
    match c () with None -> n | Some b -> go (n + Batch.length b)
  in
  go 0
