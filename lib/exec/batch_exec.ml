(** Vectorized (batch-at-a-time) execution of physical plans.

    The batch engine mirrors {!Executor} operator by operator but moves
    the getNext interface from [Tuple.t option] to [Batch.t option]: a
    scan fills chunks of up to {!Batch.chunk_size} rows, filters refine
    each chunk's selection vector in place, and the remaining operators
    work on whole chunks. Semantics are identical to the row engine —
    same emission order, same 3VL/NULL behaviour (expressions come from
    the same {!Expr_compile}), same audit-operator guarantees — which the
    differential harness ([test/test_batch_diff.ml]) enforces.

    Operators without batch kernels — [Apply] (correlated parameter
    protocol), [Nl_join]/[Index_nl_join]/[Hash_semi_join] (per-row probe
    loops) and [Limit] (early termination must stop the *row* stream
    mid-chunk, or an audit operator below the limit would record more
    accesses than the row engine) — delegate their whole subtree to the
    row executor behind a row→batch adapter, so every plan executes.

    [Filter] directly over [Seq_scan] fuses into a late-materialization
    kernel: the predicate is remapped through the scan projection and run
    on raw table rows, and only survivors are projected — the per-row
    materialization cost of filtered-out rows disappears.

    Budget accounting: with no row budget armed the scan charges each
    chunk in O(1) ({!Exec_ctx.note_scanned_many}); with one armed it
    falls back to per-row {!Exec_ctx.note_scanned}, and a budget trip
    mid-chunk emits the partial chunk first and re-raises on the next
    call — downstream audit operators see exactly the rows the row engine
    would have shown them before cancelling, and [rows_scanned] at
    cancellation is identical in both modes. *)

open Storage
open Plan

type bcursor = unit -> Batch.t option
type bfactory = unit -> bcursor

let cancelled = function
  | Engine_core.Engine_error.Error (Engine_core.Engine_error.Cancelled _) ->
    true
  | _ -> false

(* Re-chunk a row cursor (a delegated row-engine subtree) into batches.
   Each chunk is a fresh minor-heap array so the (usually young) tuples
   it buffers die with it instead of being promoted out of a reused
   major-heap buffer. *)
let batch_of_rows (c : Executor.cursor) : bcursor =
  fun () ->
    match c () with
    | None -> None
    | Some first ->
      let buf = Array.make Batch.chunk_size [||] in
      buf.(0) <- first;
      let n = ref 1 in
      let continue_ = ref true in
      while !continue_ && !n < Batch.chunk_size do
        match c () with
        | None -> continue_ := false
        | Some r ->
          buf.(!n) <- r;
          incr n
      done;
      Some (Batch.of_array buf !n)

(* Emit a materialized row list (sort/aggregation output) in fresh
   chunks. *)
let emit_rows (rows : Tuple.t list) : bcursor =
  let remaining = ref rows in
  fun () ->
    match !remaining with
    | [] -> None
    | _ ->
      let buf = Array.make Batch.chunk_size [||] in
      let n = ref 0 in
      let continue_ = ref true in
      while !continue_ && !n < Batch.chunk_size do
        match !remaining with
        | [] -> continue_ := false
        | r :: rest ->
          buf.(!n) <- r;
          incr n;
          remaining := rest
      done;
      Some (Batch.of_array buf !n)

(* Drain a batch cursor into a buffer a blocking operator will hold live,
   charging each tuple against the memory budget (same per-row accounting
   as the row engine's [drain_tracked]). *)
let drain_tracked ctx (c : bcursor) : Tuple.t list =
  let acc = ref [] in
  let rec go () =
    match c () with
    | None -> ()
    | Some b ->
      Batch.iter
        (fun r ->
          Exec_ctx.note_materialized ctx;
          acc := r :: !acc)
        b;
      go ()
  in
  go ();
  List.rev !acc

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | r :: rest -> r :: take (n - 1) rest

let resolve_table ctx table =
  match Catalog.find_opt ctx.Exec_ctx.catalog table with
  | Some t -> t
  | None -> raise (Executor.Exec_error (Printf.sprintf "unknown table %s" table))

(* Output arity of a physical subtree, when statically known — used to
   recognize identity projections. [None] is always safe (the projection
   just runs). *)
let rec out_arity (p : Physical.t) : int option =
  match p.Physical.op with
  | Physical.Seq_scan { schema; cols; _ } ->
    Some
      (match cols with
      | Some idxs -> Array.length idxs
      | None -> Schema.arity schema)
  | Physical.Project { cols; _ } -> Some (List.length cols)
  | Physical.Hash_agg { keys; aggs; _ } ->
    Some (List.length keys + List.length aggs)
  | Physical.Filter { child; _ }
  | Physical.Sort { child; _ }
  | Physical.Top_k { child; _ }
  | Physical.Limit { child; _ }
  | Physical.Distinct child
  | Physical.Audit_probe { child; _ } ->
    out_arity child
  | Physical.Hash_join { left; right_arity; _ }
  | Physical.Nl_join { left; right_arity; _ }
  | Physical.Index_nl_join { left; right_arity; _ } ->
    Option.map (fun l -> l + right_arity) (out_arity left)
  | Physical.Hash_semi_join { left; _ } -> out_arity left
  | Physical.Set_op { left; _ } -> out_arity left
  | Physical.Apply _ -> None

(* A projection that picks every input column in order is a per-batch
   copy with no effect; the batch engine drops it (the row engine keeps
   its per-row copy — it is the oracle). *)
let identity_project cols child =
  let rec cols_are_prefix i = function
    | [] -> true
    | (Plan.Scalar.Col j, _) :: rest -> j = i && cols_are_prefix (i + 1) rest
    | _ -> false
  in
  cols_are_prefix 0 cols && out_arity child = Some (List.length cols)

(* A projection whose every expression is a bare column reference is a
   permutation/selection of the input: [Some perm] maps each output
   position to its source column. The batch engine runs these as a
   tight index loop (and fuses them into hash-join output) instead of
   dispatching a compiled-expression closure per cell. *)
let projection_perm cols =
  let n = List.length cols in
  if n = 0 then None
  else
    let perm = Array.make n 0 in
    let rec go i = function
      | [] -> Some perm
      | (Plan.Scalar.Col j, _) :: rest ->
        perm.(i) <- j;
        go (i + 1) rest
      | _ -> None
    in
    go 0 cols

(* The (column, value) pair virtually deleted from scans of [table], if
   the offline auditor armed one (Q(D - t), Definition 2.3). *)
let hide_for ctx table =
  match ctx.Exec_ctx.hide with
  | Some (ht, col, v)
    when String.lowercase_ascii ht = String.lowercase_ascii table ->
    Some (col, v)
  | _ -> None

(* Metrics + guard wrapper, mirroring the row engine's [compile]: counted
   per batch call (rows accumulate by batch length), registration in plan
   pre-order. Operators whose subtree delegates to the row executor are
   *not* wrapped here — the row engine instruments them itself. *)
let rec compile (ctx : Exec_ctx.t) (plan : Physical.t) : bfactory =
  match plan.Physical.op with
  | Physical.Apply _ | Physical.Nl_join _ | Physical.Index_nl_join _
  | Physical.Hash_semi_join _ | Physical.Limit _ ->
    let f = Executor.compile ctx plan in
    fun () -> batch_of_rows (f ())
  | _ ->
    let base =
      if not (Metrics.enabled ctx.Exec_ctx.metrics) then compile_op ctx plan
      else begin
        let st = Metrics.register ctx.Exec_ctx.metrics plan in
        let f = compile_op ctx plan in
        fun () ->
          st.Metrics.opens <- st.Metrics.opens + 1;
          let c = f () in
          fun () ->
            let t0 = Metrics.now_s () in
            let r = c () in
            st.Metrics.time_s <- st.Metrics.time_s +. (Metrics.now_s () -. t0);
            st.Metrics.calls <- st.Metrics.calls + 1;
            (match r with
            | Some b ->
              st.Metrics.batches <- st.Metrics.batches + 1;
              st.Metrics.rows <- st.Metrics.rows + Batch.length b
            | None -> ());
            r
      end
    in
    let faults_armed = Engine_core.Faultkit.armed ctx.Exec_ctx.faults in
    if not (Exec_ctx.guards_armed ctx || faults_armed) then base
    else begin
      let label = Physical.label plan in
      fun () ->
        Exec_ctx.check_deadline ctx;
        let c = base () in
        fun () ->
          if faults_armed then
            Engine_core.Faultkit.on_get_next ctx.Exec_ctx.faults ~op:label;
          (* A batch call covers up to [chunk_size] rows, so the every-16th
             -tick guard would be far too coarse: check the deadline on
             every call instead. *)
          Exec_ctx.check_deadline ctx;
          c ()
    end

and compile_op (ctx : Exec_ctx.t) (plan : Physical.t) : bfactory =
  match plan.Physical.op with
  | Physical.Apply _ | Physical.Nl_join _ | Physical.Index_nl_join _
  | Physical.Hash_semi_join _ | Physical.Limit _ ->
    (* Handled by the row-engine adapter in [compile]. *)
    assert false
  | Physical.Seq_scan { table; cols; _ } -> compile_scan ctx table cols
  | Physical.Filter
      { pred; child = { Physical.op = Physical.Seq_scan { table; cols; _ }; _ }
                      as scan }
    when table <> "$dual"
         && not (Engine_core.Faultkit.armed ctx.Exec_ctx.faults) ->
    (* Late materialization: fill raw table rows, filter them, and apply
       the scan projection to the survivors only (the row engine must
       project every row before its filter can look at it). Skipped when
       fault injection is armed so per-operator fault sites stay
       identical to the row engine's. *)
    compile_filter_scan ctx ~scan ~table ~cols pred
  | Physical.Filter { pred; child } ->
    let cf = compile ctx child in
    let refine = Expr_compile.compile_pred_batch ctx pred in
    fun () ->
      let c = cf () in
      let rec next () =
        match c () with
        | None -> None
        | Some b ->
          refine b;
          if Batch.length b = 0 then next () else Some b
      in
      next
  | Physical.Project { cols; child }
    when (not ctx.Exec_ctx.interpret_exprs) && identity_project cols child ->
    (* No-op projection (e.g. the planner's SELECT-* Project stack):
       pass the child's batches through untouched. Skipped in
       interpreter-oracle mode, which must evaluate every expression. *)
    compile ctx child
  | Physical.Project
      { cols;
        child =
          {
            Physical.op =
              Physical.Hash_join
                { kind; lkeys; rkeys; residual = None; left; right; right_arity };
            _;
          } as jnode;
      }
    when (not ctx.Exec_ctx.interpret_exprs)
         && (not (Engine_core.Faultkit.armed ctx.Exec_ctx.faults))
         && projection_perm cols <> None
         && out_arity left <> None ->
    (* Fused projection-over-join: every joined tuple is built directly
       in projected order from the probe/build rows, skipping the
       intermediate full-width append and the second per-batch
       projection pass (SELECT * over a join always reorders build-side
       columns, so this is the hot path of every join query). Only for
       residual-free joins — a residual predicate evaluates on the
       unprojected appended tuple. The join node keeps its own metrics
       entry even though it no longer exists as a separate operator;
       skipped when fault injection is armed so per-operator fault
       sites stay identical to the row engine's. *)
    let perm =
      match projection_perm cols with Some p -> p | None -> assert false
    in
    let la = match out_arity left with Some a -> a | None -> assert false in
    let n = Array.length perm in
    let combine lrow rrow =
      let out = Array.make n Value.Null in
      for i = 0 to n - 1 do
        let j = Array.unsafe_get perm i in
        Array.unsafe_set out i
          (if j < la then Array.unsafe_get lrow j
           else Array.unsafe_get rrow (j - la))
      done;
      out
    in
    let generic =
      if not (Metrics.enabled ctx.Exec_ctx.metrics) then
        compile_hash_join ctx kind ~lkeys ~rkeys ~residual:None ~left ~right
          ~right_arity ~combine
      else begin
        (* Register the join node before its children, as [compile]
           would, so EXPLAIN ANALYZE keeps its operator order. *)
        let st = Metrics.register ctx.Exec_ctx.metrics jnode in
        let jf =
          compile_hash_join ctx kind ~lkeys ~rkeys ~residual:None ~left ~right
            ~right_arity ~combine
        in
        fun () ->
          st.Metrics.opens <- st.Metrics.opens + 1;
          let c = jf () in
          fun () ->
            let t0 = Metrics.now_s () in
            let r = c () in
            st.Metrics.time_s <- st.Metrics.time_s +. (Metrics.now_s () -. t0);
            st.Metrics.calls <- st.Metrics.calls + 1;
            (match r with
            | Some b ->
              st.Metrics.batches <- st.Metrics.batches + 1;
              st.Metrics.rows <- st.Metrics.rows + Batch.length b
            | None -> ());
            r
      end
    in
    let fused =
      (* Late materialization pays off on the side whose tuples it
         avoids building: fuse the probe side when it is the larger
         input, the build side when the planner builds on the larger
         input. (The small side's cells are shared across the join
         fan-out either way.) *)
      if left.Physical.est >= right.Physical.est then
        fused_join_scan ctx ~perm ~la kind ~lkeys ~rkeys ~left ~right
      else fused_join_build ctx ~perm ~la kind ~lkeys ~rkeys ~left ~right
    in
    (match fused with
    | None -> generic
    | Some open_fused ->
      fun () -> (match open_fused () with Some c -> c | None -> generic ()))
  | Physical.Project { cols; child }
    when (not ctx.Exec_ctx.interpret_exprs) && projection_perm cols <> None ->
    (* Column permutation/selection: a tight index loop per row instead
       of a compiled-expression closure call per cell. *)
    let perm =
      match projection_perm cols with Some p -> p | None -> assert false
    in
    let cf = compile ctx child in
    let permute b =
      let n = Batch.length b in
      let orows = Array.make n [||] in
      for i = 0 to n - 1 do
        Array.unsafe_set orows i (Tuple.project (Batch.get b i) perm)
      done;
      Batch.dense orows
    in
    fun () ->
      let c = cf () in
      fun () -> Option.map permute (c ())
  | Physical.Project { cols; child } ->
    let cf = compile ctx child in
    let proj = Expr_compile.compile_project_batch ctx (List.map fst cols) in
    fun () ->
      let c = cf () in
      fun () -> Option.map proj (c ())
  | Physical.Hash_join { kind; lkeys; rkeys; residual; left; right; right_arity }
    ->
    compile_hash_join ctx kind ~lkeys ~rkeys ~residual ~left ~right
      ~right_arity
  | Physical.Hash_agg { keys; aggs; child } -> compile_group ctx keys aggs child
  | Physical.Sort { keys; child } ->
    let cf = compile ctx child in
    let sort_rows = Executor.compile_sorter ctx keys in
    fun () -> emit_rows (sort_rows (drain_tracked ctx (cf ())))
  | Physical.Top_k { n; keys; child } ->
    (* Fused Limit-over-Sort drains its child completely in both engines,
       so unlike a bare Limit it is safe to run batch-native. *)
    let cf = compile ctx child in
    let sort_rows = Executor.compile_sorter ctx keys in
    fun () -> emit_rows (take n (sort_rows (drain_tracked ctx (cf ()))))
  | Physical.Distinct child ->
    let cf = compile ctx child in
    fun () ->
      let c = cf () in
      let seen = Tuple.Hashtbl_t.create 256 in
      let dedup row =
        if Tuple.Hashtbl_t.mem seen row then false
        else begin
          Tuple.Hashtbl_t.replace seen row ();
          true
        end
      in
      let rec next () =
        match c () with
        | None -> None
        | Some b ->
          Batch.refine dedup b;
          if Batch.length b = 0 then next () else Some b
      in
      next
  | Physical.Set_op { op; left; right } -> compile_set_op ctx op left right
  | Physical.Audit_probe { audit_name; id_col; child } ->
    let cf = compile ctx child in
    let name = String.lowercase_ascii audit_name in
    let st = Metrics.find ctx.Exec_ctx.metrics plan in
    fun () ->
      let sensitive =
        match Exec_ctx.audit_ids ctx ~audit_name:name with
        | Some s -> s
        | None ->
          raise
            (Executor.Exec_error
               (Printf.sprintf
                  "audit operator for %s: sensitive-ID set not installed"
                  audit_name))
      in
      let c = cf () in
      fun () ->
        match c () with
        | None -> None
        | Some b ->
          (* The probe loop runs over the whole chunk: one hash probe per
             selected row, marking hits with the query generation. The
             batch passes through unmodified — the no-filtering invariant
             (§IV-A2) holds per chunk exactly as it does per row. *)
          Batch.iter
            (fun row ->
              ctx.Exec_ctx.audit_probes <- ctx.Exec_ctx.audit_probes + 1;
              (match st with
              | Some s -> s.Metrics.probes <- s.Metrics.probes + 1
              | None -> ());
              match Value.Hashtbl_v.find_opt sensitive row.(id_col) with
              | Some mark ->
                ctx.Exec_ctx.audit_hits <- ctx.Exec_ctx.audit_hits + 1;
                (match st with
                | Some s -> s.Metrics.hits <- s.Metrics.hits + 1
                | None -> ());
                if !mark <> ctx.Exec_ctx.generation then
                  mark := ctx.Exec_ctx.generation
              | None -> ())
            b;
          Some b

and compile_scan ctx table cols : bfactory =
  if table = "$dual" then (fun () ->
    let done_ = ref false in
    fun () ->
      if !done_ then None
      else begin
        done_ := true;
        Some (Batch.dense [| [||] |])
      end)
  else
    let project row =
      match cols with None -> row | Some idxs -> Tuple.project row idxs
    in
    fun () ->
      let t = resolve_table ctx table in
      let hide = hide_for ctx table in
      (* A budget trip mid-chunk must not swallow the rows already filled:
         they were charged, and in row mode they would have reached the
         operators above (including audit probes) before the cancelling
         row. Emit the partial chunk and re-raise on the next call. *)
      let pending = ref None in
      let b = Batch.create () in
      let buf = b.Batch.rows in
      let reraise_or_end () =
        match !pending with
        | Some e ->
          pending := None;
          raise e
        | None -> None
      in
      let emit n =
        if n = 0 then reraise_or_end ()
        else begin
          Batch.refill b n;
          Some b
        end
      in
      match (hide, Table.column_store t) with
      | None, Some cs ->
        (* Columnar bulk path: collect a selection vector of live slots,
           charge the scan budget, then decode column-at-a-time into a
           fresh (minor-heap) chunk. The freshly boxed tuples must NOT
           land in the reused [buf] — it lives on the major heap, and
           every store there would promote the whole chunk (write
           barrier + copy) instead of letting it die young. *)
        let sel = Array.make Batch.chunk_size 0 in
        let from = ref 0 in
        fun () ->
          (match !pending with
          | Some e ->
            pending := None;
            raise e
          | None -> ());
          let stop = Table.next_slot t in
          let filled =
            match ctx.Exec_ctx.row_budget with
            | None ->
              let n =
                Column_store.live_slots cs ~from ~stop sel
                  ~max:Batch.chunk_size
              in
              if n > 0 then Exec_ctx.note_scanned_many ctx n;
              n
            | Some _ ->
              let n = ref 0 in
              (try
                 while !n < Batch.chunk_size && !from < stop do
                   let s = !from in
                   if Column_store.is_live cs s then begin
                     Exec_ctx.note_scanned ctx;
                     Array.unsafe_set sel !n s;
                     incr n
                   end;
                   incr from
                 done
               with e when cancelled e -> pending := Some e);
              !n
          in
          if filled = 0 then reraise_or_end ()
          else
            let orows =
              match cols with
              | None -> Column_store.read_many cs sel filled
              | Some idxs -> Column_store.read_proj_many cs idxs sel filled
            in
            Some (Batch.dense orows)
      | None, None ->
        (* Heap bulk path: copy live slots straight into the chunk (no
           per-row cursor closure or option) with the scan projection
           fused into the fill, and charge the whole chunk against the
           scan counter in O(1). Only when a row budget is armed does the
           charge fall back to per-row [note_scanned], so the budget
           cancels at exactly the same row as the row engine. *)
        let slot = ref 0 in
        let fill () =
          match cols with
          | None -> Table.fill_chunk t ~slot buf ~max:Batch.chunk_size
          | Some idxs ->
            Table.fill_chunk_proj t ~slot buf ~max:Batch.chunk_size ~cols:idxs
        in
        fun () ->
          (match !pending with
          | Some e ->
            pending := None;
            raise e
          | None -> ());
          let filled = fill () in
          if filled = 0 then None
          else begin
            let n = ref filled in
            (match ctx.Exec_ctx.row_budget with
            | None -> Exec_ctx.note_scanned_many ctx filled
            | Some _ ->
              n := 0;
              (try
                 while !n < filled do
                   Exec_ctx.note_scanned ctx;
                   incr n
                 done
               with e when cancelled e -> pending := Some e));
            emit !n
          end
      | Some _, _ ->
        let c = Table.cursor ?hide t in
        fun () ->
          (match !pending with
          | Some e ->
            pending := None;
            raise e
          | None -> ());
          match c () with
          | None -> None
          | Some first ->
            let n = ref 0 in
            (try
               Exec_ctx.note_scanned ctx;
               buf.(0) <- project first;
               n := 1;
               let continue_ = ref true in
               while !continue_ && !n < Batch.chunk_size do
                 match c () with
                 | None -> continue_ := false
                 | Some r ->
                   Exec_ctx.note_scanned ctx;
                   buf.(!n) <- project r;
                   incr n
               done
             with e when cancelled e -> pending := Some e);
            emit !n

(* Fused Filter-over-Seq_scan: the vectorized engine's late-
   materialization kernel. The predicate is remapped through the scan
   projection so it evaluates on raw table rows; each chunk is filled in
   bulk, refined, and only the surviving rows are projected. Semantics —
   survivors, emission order, [rows_scanned], budget-cancellation row —
   are exactly those of the unfused Filter→Seq_scan pair; only the
   per-row projection work on filtered-out rows disappears. The scan
   node keeps its own metrics entry (rows = rows scanned, as in the row
   engine) even though it no longer exists as a separate operator. *)
and compile_filter_scan ctx ~scan ~table ~cols pred : bfactory =
  let raw_pred =
    match cols with
    | None -> pred
    | Some idxs -> Scalar.shift_cols (fun i -> idxs.(i)) pred
  in
  let test = Expr_compile.compile_pred ctx raw_pred in
  let st =
    if Metrics.enabled ctx.Exec_ctx.metrics then
      Some (Metrics.register ctx.Exec_ctx.metrics scan)
    else None
  in
  fun () ->
    let t = resolve_table ctx table in
    let hide = hide_for ctx table in
    let pending = ref None in
    (match st with
    | Some s -> s.Metrics.opens <- s.Metrics.opens + 1
    | None -> ());
    (* True late materialization on a columnar store: refine a selection
       vector of slot numbers with a typed column kernel, then decode only
       the survivors (and only the projected columns). No tuple — not even
       a filtered-out one — is ever materialized. Falls back to the
       heap-style fill-then-filter path when the predicate has shapes the
       kernels don't cover (or in interpreter-oracle mode, which must
       exercise [Eval] per row). *)
    let columnar_kernel =
      match (hide, Table.column_store t) with
      | None, Some cs when not ctx.Exec_ctx.interpret_exprs ->
        Option.map (fun k -> (cs, k)) (Col_pred.compile ctx cs raw_pred)
      | _ -> None
    in
    match columnar_kernel with
    | Some (cs, kern) ->
      let sel = Array.make Batch.chunk_size 0 in
      let from = ref 0 in
      (* Collect up to a chunk of live slot numbers, charging the scan
         budget exactly as the heap path does: O(1) per chunk with no row
         budget armed, per-row with parking otherwise. *)
      let collect () =
        let stop = Table.next_slot t in
        match ctx.Exec_ctx.row_budget with
        | None ->
          let n =
            Column_store.live_slots cs ~from ~stop sel ~max:Batch.chunk_size
          in
          if n > 0 then Exec_ctx.note_scanned_many ctx n;
          n
        | Some _ ->
          let n = ref 0 in
          (try
             while !n < Batch.chunk_size && !from < stop do
               let s = !from in
               if Column_store.is_live cs s then begin
                 Exec_ctx.note_scanned ctx;
                 Array.unsafe_set sel !n s;
                 incr n
               end;
               incr from
             done
           with e when cancelled e -> pending := Some e);
          !n
      in
      let reraise_or_end () =
        match !pending with
        | Some e ->
          pending := None;
          raise e
        | None -> None
      in
      let rec next () =
        match !pending with
        | Some e ->
          pending := None;
          raise e
        | None ->
          let t0 = match st with None -> 0.0 | Some _ -> Metrics.now_s () in
          let filled = collect () in
          (match st with
          | Some s ->
            s.Metrics.time_s <- s.Metrics.time_s +. (Metrics.now_s () -. t0);
            s.Metrics.calls <- s.Metrics.calls + 1;
            if filled > 0 then begin
              s.Metrics.batches <- s.Metrics.batches + 1;
              s.Metrics.rows <- s.Metrics.rows + filled
            end
          | None -> ());
          if filled = 0 then reraise_or_end ()
          else begin
            let m = ref 0 in
            for j = 0 to filled - 1 do
              let s = Array.unsafe_get sel j in
              if kern s = Col_pred.holds then begin
                Array.unsafe_set sel !m s;
                incr m
              end
            done;
            let k = !m in
            if k = 0 then (
              match !pending with
              | Some e ->
                pending := None;
                raise e
              | None -> next ())
            else begin
              (* Fresh (minor-heap) output chunk of survivors only,
                 decoded column-at-a-time. *)
              let orows =
                match cols with
                | None -> Column_store.read_many cs sel k
                | Some idxs -> Column_store.read_proj_many cs idxs sel k
              in
              Some (Batch.dense orows)
            end
          end
      in
      next
    | None ->
    let raw = Batch.create () in
    let rbuf = raw.Batch.rows in
    (* Fill [rbuf] with raw rows and charge the scan budget; returns the
       charged count. A budget trip mid-chunk keeps the charged prefix
       and parks the exception in [pending]. *)
    let fill =
      match hide with
      | None ->
        let slot = ref 0 in
        fun () ->
          let filled = Table.fill_chunk t ~slot rbuf ~max:Batch.chunk_size in
          if filled = 0 then 0
          else begin
            match ctx.Exec_ctx.row_budget with
            | None ->
              Exec_ctx.note_scanned_many ctx filled;
              filled
            | Some _ ->
              let n = ref 0 in
              (try
                 while !n < filled do
                   Exec_ctx.note_scanned ctx;
                   incr n
                 done
               with e when cancelled e -> pending := Some e);
              !n
          end
      | Some _ ->
        let c = Table.cursor ?hide t in
        fun () ->
          let n = ref 0 in
          (try
             let continue_ = ref true in
             while !continue_ && !n < Batch.chunk_size do
               match c () with
               | None -> continue_ := false
               | Some r ->
                 Exec_ctx.note_scanned ctx;
                 rbuf.(!n) <- r;
                 incr n
             done
           with e when cancelled e -> pending := Some e);
          !n
    in
    let reraise_or_end () =
      match !pending with
      | Some e ->
        pending := None;
        raise e
      | None -> None
    in
    let rec next () =
      match !pending with
      | Some e ->
        pending := None;
        raise e
      | None ->
        let t0 = match st with None -> 0.0 | Some _ -> Metrics.now_s () in
        let filled = fill () in
        (match st with
        | Some s ->
          s.Metrics.time_s <- s.Metrics.time_s +. (Metrics.now_s () -. t0);
          s.Metrics.calls <- s.Metrics.calls + 1;
          if filled > 0 then begin
            s.Metrics.batches <- s.Metrics.batches + 1;
            s.Metrics.rows <- s.Metrics.rows + filled
          end
        | None -> ());
        if filled = 0 then reraise_or_end ()
        else begin
          Batch.refill raw filled;
          Batch.refine test raw;
          let k = Batch.length raw in
          if k = 0 then
            (* Nothing survived this chunk: re-raise a parked budget trip
               now (nothing is owed downstream), else keep scanning. *)
            match !pending with
            | Some e ->
              pending := None;
              raise e
            | None -> next ()
          else begin
            match cols with
            | None -> Some raw
            | Some idxs ->
              (* Fresh (minor-heap) output chunk: survivors' projected
                 tuples die young with it, where a reused major-heap
                 buffer would force their promotion. *)
              let orows = Array.make k [||] in
              for i = 0 to k - 1 do
                Array.unsafe_set orows i (Tuple.project (Batch.get raw i) idxs)
              done;
              Some (Batch.dense orows)
          end
        end
    in
    next

and compile_hash_join ?(combine = Tuple.append) ctx kind ~lkeys ~rkeys
    ~residual ~left ~right ~right_arity : bfactory =
  let lf = compile ctx left in
  let rf = compile ctx right in
  let lkeys = Array.map (Expr_compile.compile ctx) lkeys in
  let rkeys = Array.map (Expr_compile.compile ctx) rkeys in
  let residual = Option.map (Expr_compile.compile_pred ctx) residual in
  let null_pad = Array.make right_arity Value.Null in
  fun () ->
    (* Build: drain the right child's batches into the hash table, keyed
       and null-skipped exactly like the row engine. Single-column keys —
       the common case — probe a {!Value.Hashtbl_v} directly: no per-row
       key array, and [Value.hash]/[Value.equal] are exactly what
       {!Tuple.Hashtbl_t} applies per element (numeric Int/Float
       unification included), so match sets are unchanged. *)
    let rc = rf () in
    let find_cands =
      if Array.length rkeys = 1 && Array.length lkeys = 1 then begin
        let rk = rkeys.(0) and lk = lkeys.(0) in
        let tbl = Value.Hashtbl_v.create 1024 in
        let rec build () =
          match rc () with
          | None -> ()
          | Some b ->
            Batch.iter
              (fun row ->
                Exec_ctx.note_materialized ctx;
                let k = rk row in
                if not (Value.is_null k) then
                  Value.Hashtbl_v.replace tbl k
                    (row
                    :: (try Value.Hashtbl_v.find tbl k with Not_found -> [])))
              b;
            build ()
        in
        build ();
        fun lrow ->
          let k = lk lrow in
          if Value.is_null k then []
          else
            match Value.Hashtbl_v.find_opt tbl k with
            | Some ([ _ ] as rows) -> rows
            | Some rows -> List.rev rows
            | None -> []
      end
      else begin
        let tbl = Tuple.Hashtbl_t.create 1024 in
        let rec build () =
          match rc () with
          | None -> ()
          | Some b ->
            Batch.iter
              (fun row ->
                Exec_ctx.note_materialized ctx;
                let k = Array.map (fun f -> f row) rkeys in
                if not (Array.exists Value.is_null k) then
                  Tuple.Hashtbl_t.replace tbl k
                    (row
                    :: (try Tuple.Hashtbl_t.find tbl k with Not_found -> [])))
              b;
            build ()
        in
        build ();
        fun lrow ->
          let k = Array.map (fun f -> f lrow) lkeys in
          if Array.exists Value.is_null k then []
          else
            match Tuple.Hashtbl_t.find_opt tbl k with
            | Some rows -> List.rev rows
            | None -> []
      end
    in
    (* Probe: one output batch per input batch (size varies with the join
       fan-out; dense, in probe order — identical to the row engine's
       emission order). *)
    let lc = lf () in
    (* Join fan-out can push one input batch's output far past
       [chunk_size], so matches are flushed into a queue of fresh
       chunk-sized (minor-heap) batches as they are produced — joined
       tuples die young with their chunk, and emission order stays the
       row engine's probe order. *)
    let queue = ref [] in
    let rec next () =
      match !queue with
      | b :: rest ->
        queue := rest;
        Some b
      | [] -> (
        match lc () with
        | None -> None
        | Some b ->
          let chunks = ref [] in
          let buf = ref (Array.make Batch.chunk_size [||]) in
          let n = ref 0 in
          let push r =
            if !n = Batch.chunk_size then begin
              chunks := Batch.dense !buf :: !chunks;
              buf := Array.make Batch.chunk_size [||];
              n := 0
            end;
            Array.unsafe_set !buf !n r;
            incr n
          in
          Batch.iter
            (fun lrow ->
              let cands = find_cands lrow in
              let matched = ref false in
              List.iter
                (fun rrow ->
                  let combined = combine lrow rrow in
                  let keep =
                    match residual with None -> true | Some test -> test combined
                  in
                  if keep then begin
                    matched := true;
                    push combined
                  end)
                cands;
              if (not !matched) && kind = Logical.J_left then
                push (combine lrow null_pad))
            b;
          if !n > 0 then chunks := Batch.of_array !buf !n :: !chunks;
          match List.rev !chunks with
          | [] -> next ()
          | c :: rest ->
            queue := rest;
            Some c)
    in
    next

(* Fused projection-over-join-over-scan: late materialization carried
   all the way through a single-key inner hash join on a columnar probe
   side. The probe never materializes its input rows at all — live
   slots are collected and refined exactly like the fused filter-scan,
   the join key is read straight from the probe table's unboxed key
   column (the build side is bucketed by native [int], so a probe is
   one array load and one int-hash lookup, no boxing), and output
   tuples are decoded column-at-a-time directly into projected order:
   probe-side cells only for slots that actually joined, build-side
   cells copied from the stored build rows. Match sets, emission order
   (probe order, build-insertion order within a key) and the scanned/
   materialized counters are exactly the generic path's.

   Compile-time [None] when the shape doesn't fit (non-inner join,
   multi-column key, probe not a (filtered) scan, metrics enabled — the
   bypassed operator nodes would show blank timings in EXPLAIN
   ANALYZE); open-time [None] (caller falls back to the generic
   factory, before any child cursor is opened) when the store is not
   columnar, the key column is not int/date-backed, a [?hide] partition
   or guard budget is armed, or a kernel fails to compile. Build keys
   that no probe key could ever [Value.equal] are dropped; integral
   floats ≥ 2^53 (where several ints can round to one float) force the
   boxed-key table so the Int/Float unification of {!Value.equal} is
   preserved bit-for-bit. *)
and fused_join_scan ctx ~perm ~la kind ~lkeys ~rkeys ~left ~right :
    (unit -> bcursor option) option =
  if
    kind <> Logical.J_inner
    || Metrics.enabled ctx.Exec_ctx.metrics
    || Array.length lkeys <> 1
    || Array.length rkeys <> 1
  then None
  else
    let parts =
      match left.Physical.op with
      | Physical.Seq_scan { table; cols; _ } when table <> "$dual" ->
        Some (table, cols, None)
      | Physical.Filter
          { pred;
            child = { Physical.op = Physical.Seq_scan { table; cols; _ }; _ }
          }
        when table <> "$dual" ->
        Some (table, cols, Some pred)
      | _ -> None
    in
    match parts with
    | None -> None
    | Some (table, cols, pred) -> (
      match lkeys.(0) with
      | Scalar.Col kc ->
        let raw_col j =
          match cols with None -> j | Some idxs -> idxs.(j)
        in
        let raw_kc = raw_col kc in
        let raw_pred =
          Option.map
            (fun p ->
              match cols with
              | None -> p
              | Some idxs -> Scalar.shift_cols (fun i -> idxs.(i)) p)
            pred
        in
        let rk = Expr_compile.compile ctx rkeys.(0) in
        let rf = compile ctx right in
        let n_out = Array.length perm in
        let probe_pos =
          Array.of_list
            (List.filter
               (fun p -> perm.(p) < la)
               (List.init n_out (fun p -> p)))
        in
        Some
          (fun () ->
            if ctx.Exec_ctx.interpret_exprs || Exec_ctx.guards_armed ctx then
              None
            else
              let t = resolve_table ctx table in
              if hide_for ctx table <> None then None
              else
                match Table.column_store t with
                | None -> None
                | Some cs -> (
                  let key_ty = Column_store.col_type cs raw_kc in
                  match (Column_store.col_data cs raw_kc, key_ty) with
                  | Column_store.Ints karr, (Datatype.T_int | Datatype.T_date)
                    -> (
                    let pred_kern =
                      match raw_pred with
                      | None -> Some None
                      | Some p -> (
                        match Col_pred.compile ctx cs p with
                        | Some k -> Some (Some k)
                        | None -> None)
                    in
                    match pred_kern with
                    | None -> None
                    | Some pred_kern ->
                      let is_date = key_ty = Datatype.T_date in
                      let knulls = Column_store.col_nulls cs raw_kc in
                      (* Build: drain the build child (all open-time
                         fallbacks are behind us — the generic factory
                         would re-open it and double-count). *)
                      let rc = rf () in
                      let pairs = ref [] in
                      let rec drain () =
                        match rc () with
                        | None -> ()
                        | Some b ->
                          Batch.iter
                            (fun row ->
                              Exec_ctx.note_materialized ctx;
                              pairs := (rk row, row) :: !pairs)
                            b;
                          drain ()
                      in
                      drain ();
                      let build_pairs = List.rev !pairs in
                      let ambiguous =
                        (not is_date)
                        && List.exists
                             (fun (v, _) ->
                               match v with
                               | Value.Float f ->
                                 Float.is_integer f
                                 && Float.abs f >= 9007199254740992.0
                               | _ -> false)
                             build_pairs
                      in
                      let find_cands =
                        if ambiguous then begin
                          let tbl = Value.Hashtbl_v.create 1024 in
                          List.iter
                            (fun (v, row) ->
                              if not (Value.is_null v) then
                                Value.Hashtbl_v.replace tbl v
                                  (row
                                  :: (try Value.Hashtbl_v.find tbl v
                                      with Not_found -> [])))
                            build_pairs;
                          let box =
                            if is_date then fun k -> Value.Date k
                            else fun k -> Value.Int k
                          in
                          fun k ->
                            match Value.Hashtbl_v.find_opt tbl (box k) with
                            | Some ([ _ ] as l) -> l
                            | Some l -> List.rev l
                            | None -> []
                        end
                        else begin
                          let tbl : (int, Tuple.t list) Hashtbl.t =
                            Hashtbl.create 1024
                          in
                          List.iter
                            (fun (v, row) ->
                              let k =
                                match v with
                                | Value.Int i when not is_date -> Some i
                                | Value.Date d when is_date -> Some d
                                | Value.Float f
                                  when (not is_date) && Float.is_integer f ->
                                  (* Exact iff the float round-trips:
                                     [Float.compare], not [=], so -0.0
                                     stays distinct from Int 0 as in
                                     {!Value.compare_total}. *)
                                  let fi = int_of_float f in
                                  if Float.compare (float_of_int fi) f = 0
                                  then Some fi
                                  else None
                                | _ -> None
                              in
                              match k with
                              | Some k ->
                                Hashtbl.replace tbl k
                                  (row
                                  :: (try Hashtbl.find tbl k
                                      with Not_found -> []))
                              | None -> ())
                            build_pairs;
                          fun k ->
                            match Hashtbl.find_opt tbl k with
                            | Some ([ _ ] as l) -> l
                            | Some l -> List.rev l
                            | None -> []
                        end
                      in
                      (* Probe: slot-at-a-time keys, column-at-a-time
                         output, nothing materialized for non-matching
                         probe rows. Matches flush into fresh
                         chunk-sized (minor-heap) batches — fan-out can
                         push one probe chunk's output past
                         [chunk_size], and an oversized output array
                         would be a major-heap allocation that promotes
                         every tuple stored into it. *)
                      let sel = Array.make Batch.chunk_size 0 in
                      let from = ref 0 in
                      let queue = ref [] in
                      let rec next () =
                        match !queue with
                        | b :: rest ->
                          queue := rest;
                          Some b
                        | [] ->
                          let stop = Table.next_slot t in
                          let k =
                            Column_store.live_slots cs ~from ~stop sel
                              ~max:Batch.chunk_size
                          in
                          if k = 0 then None
                          else begin
                            Exec_ctx.note_scanned_many ctx k;
                            let k =
                              match pred_kern with
                              | None -> k
                              | Some kern ->
                                let m = ref 0 in
                                for i = 0 to k - 1 do
                                  let s = Array.unsafe_get sel i in
                                  if kern s = Col_pred.holds then begin
                                    Array.unsafe_set sel !m s;
                                    incr m
                                  end
                                done;
                                !m
                            in
                            let chunks = ref [] in
                            let oslots = ref (Array.make Batch.chunk_size 0) in
                            let orrows =
                              ref (Array.make Batch.chunk_size [||])
                            in
                            let m = ref 0 in
                            let flush () =
                              if !m > 0 then begin
                                let mm = !m in
                                let sl = !oslots and rr = !orrows in
                                let rows =
                                  Array.init mm (fun _ ->
                                      Array.make n_out Value.Null)
                                in
                                (* Join fan-out repeats the same probe
                                   slot in consecutive outputs: decode
                                   each probe cell once per run head,
                                   then share the boxed value down the
                                   run (the build side already shares
                                   its stored tuples' cells). *)
                                let usel = Array.make mm 0 in
                                let ufirst = Array.make mm [||] in
                                let u = ref 0 in
                                for r = 0 to mm - 1 do
                                  if
                                    r = 0
                                    || Array.unsafe_get sl r
                                       <> Array.unsafe_get sl (r - 1)
                                  then begin
                                    Array.unsafe_set usel !u
                                      (Array.unsafe_get sl r);
                                    Array.unsafe_set ufirst !u
                                      (Array.unsafe_get rows r);
                                    incr u
                                  end
                                done;
                                let u = !u in
                                for p = 0 to n_out - 1 do
                                  let j = Array.unsafe_get perm p in
                                  if j < la then
                                    Column_store.blit_col cs ~col:(raw_col j)
                                      ~pos:p usel u ufirst
                                  else begin
                                    let bi = j - la in
                                    for r = 0 to mm - 1 do
                                      Array.unsafe_set
                                        (Array.unsafe_get rows r)
                                        p
                                        (Array.unsafe_get
                                           (Array.unsafe_get rr r)
                                           bi)
                                    done
                                  end
                                done;
                                if u < mm then
                                  for r = 1 to mm - 1 do
                                    if
                                      Array.unsafe_get sl r
                                      = Array.unsafe_get sl (r - 1)
                                    then begin
                                      let prev = Array.unsafe_get rows (r - 1)
                                      and cur = Array.unsafe_get rows r in
                                      Array.iter
                                        (fun p ->
                                          Array.unsafe_set cur p
                                            (Array.unsafe_get prev p))
                                        probe_pos
                                    end
                                  done;
                                chunks := Batch.dense rows :: !chunks;
                                oslots := Array.make Batch.chunk_size 0;
                                orrows := Array.make Batch.chunk_size [||];
                                m := 0
                              end
                            in
                            let push s r =
                              if !m = Batch.chunk_size then flush ();
                              Array.unsafe_set !oslots !m s;
                              Array.unsafe_set !orrows !m r;
                              incr m
                            in
                            for i = 0 to k - 1 do
                              let s = Array.unsafe_get sel i in
                              if not (Column_store.Bitmap.get knulls s) then
                                match
                                  find_cands (Array.unsafe_get karr s)
                                with
                                | [] -> ()
                                | cands ->
                                  List.iter (fun r -> push s r) cands
                            done;
                            flush ();
                            match List.rev !chunks with
                            | [] -> next ()
                            | c :: rest ->
                              queue := rest;
                              Some c
                          end
                      in
                      Some next)
                  | _ -> None))
      | _ -> None)

(* The build-side mirror of {!fused_join_scan}: late materialization
   through a single-key inner hash join whose BUILD child is a
   (filtered) columnar scan. The build side is never materialized as
   tuples — live slots are collected and refined with the column
   kernels, then bucketed by the unboxed key column as raw slot
   numbers. Probe rows come from the generically-compiled probe child;
   a probe is one int-hash lookup, and each matched build cell is
   decoded column-at-a-time straight into its projected output
   position (probe-side cells are pointer copies from the already-
   boxed probe tuple). The right orientation when the planner builds
   on the larger input: the whole build-side tuple materialization
   disappears, and each build cell is decoded at most once per match.

   Build keys come from a typed int/date column, so they are exact
   ints — the Int/Float unification of {!Value.equal} is reproduced on
   the probe side by an exact float→int round-trip; if any build key
   reaches the 2^53 range where several ints can round to one float,
   the whole fusion falls back (checked before any counter moves). *)
and fused_join_build ctx ~perm ~la kind ~lkeys ~rkeys ~left ~right :
    (unit -> bcursor option) option =
  if
    kind <> Logical.J_inner
    || Metrics.enabled ctx.Exec_ctx.metrics
    || Array.length lkeys <> 1
    || Array.length rkeys <> 1
  then None
  else
    let parts =
      match right.Physical.op with
      | Physical.Seq_scan { table; cols; _ } when table <> "$dual" ->
        Some (table, cols, None)
      | Physical.Filter
          { pred;
            child = { Physical.op = Physical.Seq_scan { table; cols; _ }; _ }
          }
        when table <> "$dual" ->
        Some (table, cols, Some pred)
      | _ -> None
    in
    match parts with
    | None -> None
    | Some (table, cols, pred) -> (
      match rkeys.(0) with
      | Scalar.Col kc ->
        let raw_col j = match cols with None -> j | Some idxs -> idxs.(j) in
        let raw_kc = raw_col kc in
        let raw_pred =
          Option.map
            (fun p ->
              match cols with
              | None -> p
              | Some idxs -> Scalar.shift_cols (fun i -> idxs.(i)) p)
            pred
        in
        let lk = Expr_compile.compile ctx lkeys.(0) in
        let lf = compile ctx left in
        let n_out = Array.length perm in
        Some
          (fun () ->
            if ctx.Exec_ctx.interpret_exprs || Exec_ctx.guards_armed ctx then
              None
            else
              let t = resolve_table ctx table in
              if hide_for ctx table <> None then None
              else
                match Table.column_store t with
                | None -> None
                | Some cs -> (
                  let key_ty = Column_store.col_type cs raw_kc in
                  match (Column_store.col_data cs raw_kc, key_ty) with
                  | Column_store.Ints karr, (Datatype.T_int | Datatype.T_date)
                    -> (
                    let pred_kern =
                      match raw_pred with
                      | None -> Some None
                      | Some p -> (
                        match Col_pred.compile ctx cs p with
                        | Some k -> Some (Some k)
                        | None -> None)
                    in
                    match pred_kern with
                    | None -> None
                    | Some pred_kern ->
                      let is_date = key_ty = Datatype.T_date in
                      let knulls = Column_store.col_nulls cs raw_kc in
                      let max_exact = 9007199254740992 (* 2^53 *) in
                      let stop0 = Table.next_slot t in
                      let huge = ref false in
                      if not is_date then
                        for s = 0 to stop0 - 1 do
                          if
                            Column_store.is_live cs s
                            && not (Column_store.Bitmap.get knulls s)
                          then begin
                            let a = Array.unsafe_get karr s in
                            if a >= max_exact || a <= -max_exact then
                              huge := true
                          end
                        done;
                      if !huge then None
                      else begin
                        (* Build: bucket surviving slots by unboxed key
                           (no fallback past this point — counters
                           move). *)
                        let tbl : (int, int list) Hashtbl.t =
                          Hashtbl.create 1024
                        in
                        let sel = Array.make Batch.chunk_size 0 in
                        let from = ref 0 in
                        let continue_ = ref true in
                        while !continue_ do
                          let stop = Table.next_slot t in
                          let k =
                            Column_store.live_slots cs ~from ~stop sel
                              ~max:Batch.chunk_size
                          in
                          if k = 0 then continue_ := false
                          else begin
                            Exec_ctx.note_scanned_many ctx k;
                            let k =
                              match pred_kern with
                              | None -> k
                              | Some kern ->
                                let m = ref 0 in
                                for i = 0 to k - 1 do
                                  let s = Array.unsafe_get sel i in
                                  if kern s = Col_pred.holds then begin
                                    Array.unsafe_set sel !m s;
                                    incr m
                                  end
                                done;
                                !m
                            in
                            for i = 0 to k - 1 do
                              let s = Array.unsafe_get sel i in
                              Exec_ctx.note_materialized ctx;
                              if not (Column_store.Bitmap.get knulls s) then begin
                                let key = Array.unsafe_get karr s in
                                Hashtbl.replace tbl key
                                  (s
                                  :: (try Hashtbl.find tbl key
                                      with Not_found -> []))
                              end
                            done
                          end
                        done;
                        let find_slots k =
                          match Hashtbl.find_opt tbl k with
                          | Some ([ _ ] as l) -> l
                          | Some l -> List.rev l
                          | None -> []
                        in
                        let probe_slots v =
                          match v with
                          | Value.Int i when not is_date -> find_slots i
                          | Value.Date d when is_date -> find_slots d
                          | Value.Float f
                            when (not is_date) && Float.is_integer f ->
                            (* Exact iff the float round-trips
                               ([Float.compare], so -0.0 stays distinct
                               from Int 0); ints ≥ 2^53 can't be build
                               keys here, so a non-round-tripping float
                               matches nothing. *)
                            let fi = int_of_float f in
                            if Float.compare (float_of_int fi) f = 0 then
                              find_slots fi
                            else []
                          | _ -> []
                        in
                        (* Probe: matches flush into fresh chunk-sized
                           (minor-heap) batches, in probe order —
                           fan-out can push one probe batch's output
                           past [chunk_size], and an oversized output
                           array would be a major-heap allocation that
                           promotes every tuple stored into it. *)
                        let lc = lf () in
                        let queue = ref [] in
                        let rec next () =
                          match !queue with
                          | b :: rest ->
                            queue := rest;
                            Some b
                          | [] -> (
                            match lc () with
                            | None -> None
                            | Some b ->
                              let chunks = ref [] in
                              let olrows =
                                ref (Array.make Batch.chunk_size [||])
                              in
                              let oslots =
                                ref (Array.make Batch.chunk_size 0)
                              in
                              let m = ref 0 in
                              let flush () =
                                if !m > 0 then begin
                                  let mm = !m in
                                  let lr = !olrows and sl = !oslots in
                                  let rows =
                                    Array.init mm (fun _ ->
                                        Array.make n_out Value.Null)
                                  in
                                  for p = 0 to n_out - 1 do
                                    let j = Array.unsafe_get perm p in
                                    if j < la then
                                      for r = 0 to mm - 1 do
                                        Array.unsafe_set
                                          (Array.unsafe_get rows r)
                                          p
                                          (Array.unsafe_get
                                             (Array.unsafe_get lr r)
                                             j)
                                      done
                                    else
                                      Column_store.blit_col cs
                                        ~col:(raw_col (j - la))
                                        ~pos:p sl mm rows
                                  done;
                                  chunks := Batch.dense rows :: !chunks;
                                  olrows :=
                                    Array.make Batch.chunk_size [||];
                                  oslots := Array.make Batch.chunk_size 0;
                                  m := 0
                                end
                              in
                              let push lrow s =
                                if !m = Batch.chunk_size then flush ();
                                Array.unsafe_set !olrows !m lrow;
                                Array.unsafe_set !oslots !m s;
                                incr m
                              in
                              Batch.iter
                                (fun lrow ->
                                  match probe_slots (lk lrow) with
                                  | [] -> ()
                                  | cands ->
                                    List.iter (fun s -> push lrow s) cands)
                                b;
                              flush ();
                              match List.rev !chunks with
                              | [] -> next ()
                              | c :: rest ->
                                queue := rest;
                                Some c)
                        in
                        Some next
                      end)
                  | _ -> None))
      | _ -> None)

and compile_group ctx keys aggs child : bfactory =
  (* The generic path is always compiled (and its operators registered
     for metrics); the fused columnar kernel takes over at open time
     when the store and the expression shapes allow it. *)
  let generic = compile_group_generic ctx keys aggs child in
  match fused_group ctx keys aggs child with
  | None -> generic
  | Some open_fused -> (
    fun () ->
      match open_fused () with
      | Some cursor -> cursor
      | None -> generic ())

and compile_group_generic ctx keys aggs child : bfactory =
  let cf = compile ctx child in
  let key_exprs =
    Array.of_list (List.map (fun (e, _) -> Expr_compile.compile ctx e) keys)
  in
  let agg_list = Array.of_list aggs in
  let agg_args =
    Array.map
      (fun a -> Option.map (Expr_compile.compile ctx) a.Logical.arg)
      agg_list
  in
  if keys = [] then (
    (* Scalar aggregation: one state vector in locals — the batch loop
       skips the per-row group-key build and hash probe entirely (the row
       engine cannot: its per-row protocol keeps state behind the same
       hash table as the grouped path). *)
    let nagg = Array.length agg_list in
    fun () ->
      let c = cf () in
      let states = Array.map Aggregate.create agg_list in
      let seen = ref false in
      let consume_row row =
        Array.iteri
          (fun i st ->
            let v =
              match agg_args.(i) with None -> None | Some f -> Some (f row)
            in
            Aggregate.update st v)
          states
      in
      let rec consume () =
        match c () with
        | None -> ()
        | Some b ->
          if Batch.length b > 0 then begin
            if not !seen then begin
              seen := true;
              Exec_ctx.note_materialized ctx
            end;
            (* COUNT(<star>)-style states (no argument) advance by the
               batch length in O(1); anything else updates per row. *)
            if Array.for_all Option.is_none agg_args then
              for i = 0 to nagg - 1 do
                Aggregate.update_many states.(i) (Batch.length b)
              done
            else Batch.iter consume_row b
          end;
          consume ()
      in
      consume ();
      emit_rows [ Array.map Aggregate.final states ])
  else
  fun () ->
    let c = cf () in
    let groups : Aggregate.state array Tuple.Hashtbl_t.t =
      Tuple.Hashtbl_t.create 256
    in
    let order = ref [] in
    let consume_row row =
      let k = Array.map (fun f -> f row) key_exprs in
      let states =
        match Tuple.Hashtbl_t.find_opt groups k with
        | Some s -> s
        | None ->
          Exec_ctx.note_materialized ctx;
          let s = Array.map Aggregate.create agg_list in
          Tuple.Hashtbl_t.replace groups k s;
          order := k :: !order;
          s
      in
      Array.iteri
        (fun i st ->
          let v =
            match agg_args.(i) with None -> None | Some f -> Some (f row)
          in
          Aggregate.update st v)
        states
    in
    let rec consume () =
      match c () with
      | None -> ()
      | Some b ->
        Batch.iter consume_row b;
        consume ()
    in
    consume ();
    let emit k =
      let states = Tuple.Hashtbl_t.find groups k in
      Tuple.append k (Array.map Aggregate.final states)
    in
    let pending =
      if Array.length key_exprs = 0 && Tuple.Hashtbl_t.length groups = 0 then begin
        (* Scalar aggregate over empty input: one default row. *)
        let states = Array.map Aggregate.create agg_list in
        [ Array.map Aggregate.final states ]
      end
      else List.rev_map emit !order
    in
    emit_rows pending

(* Fused columnar aggregation: Hash_agg over (Filter over) Seq_scan on a
   columnar table runs entirely on typed column vectors — the predicate
   as a {!Col_pred} kernel over slot numbers, group keys as packed
   dictionary codes, aggregate arguments as unboxed {!Col_pred.compile_num}
   kernels feeding {!Aggregate.add_int}/{!add_float}. No input tuple is
   ever materialized; only the group rows are built, with the same
   first-seen emission order, [rows_scanned] total and per-group
   [note_materialized] accounting as the unfused pipeline.

   The compile-time half recognizes the plan shape (fault injection
   must see the unfused operators, so an armed kit disables it, as do
   Audit_probe nodes — they break the Filter-over-Seq_scan pattern and
   keep their evidence). The open-time half checks everything that
   depends on the session: heap tables, a [?hide] partition, the
   interpreter oracle, or any armed guard (whose cancellation must land
   on the exact row) fall back to the generic path. *)
and fused_group ctx keys aggs child : (unit -> bcursor option) option =
  if Engine_core.Faultkit.armed ctx.Exec_ctx.faults then None
  else
    let parts =
      match child.Physical.op with
      | Physical.Seq_scan { table; cols; _ } when table <> "$dual" ->
        Some (table, cols, None, child)
      | Physical.Filter
          { pred;
            child =
              { Physical.op = Physical.Seq_scan { table; cols; _ }; _ } as scan
          }
        when table <> "$dual" ->
        Some (table, cols, Some pred, scan)
      | _ -> None
    in
    match parts with
    | None -> None
    | Some (table, cols, pred, scan_node) ->
      let shift e =
        match cols with
        | None -> e
        | Some idxs -> Scalar.shift_cols (fun i -> idxs.(i)) e
      in
      let key_col (e, _) =
        match e with
        | Scalar.Col i -> (
          match cols with None -> Some i | Some idxs -> Some idxs.(i))
        | _ -> None
      in
      let key_cols = List.map key_col keys in
      if List.exists Option.is_none key_cols then None
      else
        let key_cols = Array.of_list (List.map Option.get key_cols) in
        let raw_pred = Option.map shift pred in
        let agg_arr = Array.of_list aggs in
        let raw_args =
          Array.map (fun a -> Option.map shift a.Logical.arg) agg_arr
        in
        Some
          (fun () ->
            if ctx.Exec_ctx.interpret_exprs || Exec_ctx.guards_armed ctx then
              None
            else
              let t = resolve_table ctx table in
              if hide_for ctx table <> None then None
              else
                match Table.column_store t with
                | None -> None
                | Some cs -> (
                  let pred_kern =
                    match raw_pred with
                    | None -> Some None
                    | Some p -> (
                      match Col_pred.compile ctx cs p with
                      | Some k -> Some (Some k)
                      | None -> None)
                  in
                  match pred_kern with
                  | None -> None
                  | Some pred_kern -> (
                    let upd = function
                      | None -> Some (fun st _ -> Aggregate.update st None)
                      | Some e -> (
                        match Col_pred.compile_num ctx cs e with
                        | Some (Col_pred.Kint f, nullk) ->
                          Some
                            (fun st s ->
                              if not (nullk s) then Aggregate.add_int st (f s))
                        | Some (Col_pred.Kfloat f, nullk) ->
                          Some
                            (fun st s ->
                              if not (nullk s) then Aggregate.add_float st (f s))
                        | None -> None)
                    in
                    let upds = Array.map upd raw_args in
                    if Array.exists Option.is_none upds then None
                    else
                      let upds = Array.map Option.get upds in
                      let exception Unsupported in
                      try
                        (* Group keys: dictionary-encoded columns only,
                           packed into one int (code = dictionary size
                           stands in for NULL, so NULLs group together
                           exactly as [Tuple] key equality groups them). *)
                        let key_info =
                          Array.map
                            (fun i ->
                              match Column_store.col_data cs i with
                              | Column_store.Codes (a, d) ->
                                ( a,
                                  Column_store.col_nulls cs i,
                                  d,
                                  Column_store.Dict.size d )
                              | _ -> raise Unsupported)
                            key_cols
                        in
                        let product =
                          Array.fold_left
                            (fun acc (_, _, _, n) ->
                              let b = n + 1 in
                              if acc > (1 lsl 44) / b then raise Unsupported
                              else acc * b)
                            1 key_info
                        in
                        let nkeys = Array.length key_cols in
                        let nagg = Array.length upds in
                        let pack s =
                          let k = ref 0 in
                          for j = 0 to nkeys - 1 do
                            let a, nulls, _, n = Array.unsafe_get key_info j in
                            let c =
                              if Column_store.Bitmap.get nulls s then n
                              else Array.unsafe_get a s
                            in
                            k := (!k * (n + 1)) + c
                          done;
                          !k
                        in
                        let decode k =
                          let vals = Array.make nkeys Value.Null in
                          let k = ref k in
                          for j = nkeys - 1 downto 0 do
                            let _, _, d, n = key_info.(j) in
                            let c = !k mod (n + 1) in
                            k := !k / (n + 1);
                            if c < n then
                              vals.(j) <-
                                Value.Str (Column_store.Dict.decode d c)
                          done;
                          vals
                        in
                        (* First-seen order, with the states stored
                           alongside so emission needs no second lookup. *)
                        let order = ref [] in
                        let new_states key =
                          Exec_ctx.note_materialized ctx;
                          let s = Array.map Aggregate.create agg_arr in
                          order := (key, s) :: !order;
                          s
                        in
                        (* Scalar aggregation: one state vector; the
                           generic path notes one materialization when
                           any input row arrives. *)
                        let scalar_states =
                          if nkeys = 0 then
                            Some (Array.map Aggregate.create agg_arr)
                          else None
                        in
                        let get_states =
                          match scalar_states with
                          | Some states ->
                            let seen = ref false in
                            fun _ ->
                              if not !seen then begin
                                seen := true;
                                Exec_ctx.note_materialized ctx
                              end;
                              states
                          | None when product <= 4096 -> begin
                            let groups = Array.make product None in
                            fun s ->
                              let key = pack s in
                              match Array.unsafe_get groups key with
                              | Some st -> st
                              | None ->
                                let st = new_states key in
                                groups.(key) <- Some st;
                                st
                          end
                          | None -> begin
                            let groups : (int, Aggregate.state array) Hashtbl.t
                                =
                              Hashtbl.create 256
                            in
                            fun s ->
                              let key = pack s in
                              match Hashtbl.find_opt groups key with
                              | Some st -> st
                              | None ->
                                let st = new_states key in
                                Hashtbl.replace groups key st;
                                st
                          end
                        in
                        let sel = Array.make Batch.chunk_size 0 in
                        let from = ref 0 in
                        let stop = Table.next_slot t in
                        let scanned = ref 0 in
                        let kept = ref 0 in
                        let chunks = ref 0 in
                        let consume s =
                          let keep =
                            match pred_kern with
                            | None -> true
                            | Some k -> k s = Col_pred.holds
                          in
                          if keep then begin
                            incr kept;
                            let states = get_states s in
                            for i = 0 to nagg - 1 do
                              (Array.unsafe_get upds i)
                                (Array.unsafe_get states i)
                                s
                            done
                          end
                        in
                        let rec drain () =
                          let n =
                            Column_store.live_slots cs ~from ~stop sel
                              ~max:Batch.chunk_size
                          in
                          if n > 0 then begin
                            Exec_ctx.note_scanned_many ctx n;
                            scanned := !scanned + n;
                            incr chunks;
                            for j = 0 to n - 1 do
                              consume (Array.unsafe_get sel j)
                            done;
                            drain ()
                          end
                        in
                        drain ();
                        (* The bypassed scan/filter operators keep their
                           metrics entries (registered by the generic
                           compile), with rows = scanned / survivors as
                           in the unfused pipeline. *)
                        if Metrics.enabled ctx.Exec_ctx.metrics then begin
                          (match
                             Metrics.find ctx.Exec_ctx.metrics scan_node
                           with
                          | Some s ->
                            s.Metrics.opens <- s.Metrics.opens + 1;
                            s.Metrics.calls <- s.Metrics.calls + !chunks;
                            s.Metrics.batches <- s.Metrics.batches + !chunks;
                            s.Metrics.rows <- s.Metrics.rows + !scanned
                          | None -> ());
                          match pred with
                          | None -> ()
                          | Some _ -> (
                            match Metrics.find ctx.Exec_ctx.metrics child with
                            | Some s ->
                              s.Metrics.opens <- s.Metrics.opens + 1;
                              s.Metrics.calls <- s.Metrics.calls + !chunks;
                              s.Metrics.batches <- s.Metrics.batches + !chunks;
                              s.Metrics.rows <- s.Metrics.rows + !kept
                            | None -> ())
                        end;
                        let pending =
                          match scalar_states with
                          | Some states ->
                            (* Emitted even over empty input, like the
                               generic scalar path. *)
                            [ Array.map Aggregate.final states ]
                          | None ->
                            List.rev_map
                              (fun (key, states) ->
                                Tuple.append (decode key)
                                  (Array.map Aggregate.final states))
                              !order
                        in
                        Some (emit_rows pending)
                      with Unsupported -> None)))

and compile_set_op ctx op left right : bfactory =
  let lf = compile ctx left in
  let rf = compile ctx right in
  match op with
  | Sql.Ast.Union_all ->
    fun () ->
      let lc = lf () in
      let rc = rf () in
      let on_left = ref true in
      let rec next () =
        if !on_left then
          match lc () with
          | Some b -> Some b
          | None ->
            on_left := false;
            next ()
        else rc ()
      in
      next
  | Sql.Ast.Union ->
    fun () ->
      let seen = Tuple.Hashtbl_t.create 256 in
      let dedup row =
        if Tuple.Hashtbl_t.mem seen row then false
        else begin
          Tuple.Hashtbl_t.replace seen row ();
          true
        end
      in
      let lc = lf () in
      let rc = rf () in
      let on_left = ref true in
      let rec next () =
        let candidate =
          if !on_left then
            match lc () with
            | Some b -> Some b
            | None ->
              on_left := false;
              rc ()
          else rc ()
        in
        match candidate with
        | None -> None
        | Some b ->
          Batch.refine dedup b;
          if Batch.length b = 0 then next () else Some b
      in
      next
  | Sql.Ast.Except | Sql.Ast.Intersect ->
    let keep_if_in_right = op = Sql.Ast.Intersect in
    fun () ->
      let right_set = Tuple.Hashtbl_t.create 256 in
      let rc = rf () in
      let rec build () =
        match rc () with
        | None -> ()
        | Some b ->
          Batch.iter
            (fun r ->
              Exec_ctx.note_materialized ctx;
              Tuple.Hashtbl_t.replace right_set r ())
            b;
          build ()
      in
      build ();
      let emitted = Tuple.Hashtbl_t.create 256 in
      let keep row =
        if
          Tuple.Hashtbl_t.mem right_set row = keep_if_in_right
          && not (Tuple.Hashtbl_t.mem emitted row)
        then begin
          Tuple.Hashtbl_t.replace emitted row ();
          true
        end
        else false
      in
      let lc = lf () in
      let rec next () =
        match lc () with
        | None -> None
        | Some b ->
          Batch.refine keep b;
          if Batch.length b = 0 then next () else Some b
      in
      next

(* ------------------------------------------------------------------ *)
(* Convenience entry points                                            *)
(* ------------------------------------------------------------------ *)

(** Compile and run under the batch engine, materializing all rows. *)
let run_list ctx plan : Tuple.t list =
  let c = compile ctx plan () in
  let acc = ref [] in
  let rec go () =
    match c () with
    | None -> ()
    | Some b ->
      Batch.iter (fun r -> acc := r :: !acc) b;
      go ()
  in
  go ();
  List.rev !acc

(** Compile and run, counting rows without materializing (benchmarks). *)
let run_count ctx plan : int =
  let c = compile ctx plan () in
  let rec go n =
    match c () with None -> n | Some b -> go (n + Batch.length b)
  in
  go 0
