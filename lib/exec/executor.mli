(** Volcano-style execution of physical plans.

    The executor consumes {!Plan.Physical.t} only — join strategies,
    equi-keys and TopK fusion were all decided by
    {!Plan.Physical.plan_of_logical} — and compiles each plan's scalar
    expressions once via {!Expr_compile}. [compile] returns a cursor
    {e factory}; invoking it opens a fresh execution. The physical audit
    operator (§IV-A2) lives here: a single hash probe per row into the
    audit expression's sensitive-ID table, marking hits with the current
    query generation — it never filters, so instrumented plans return
    exactly the plain plan's rows. *)

open Storage

exception Exec_error of string

type cursor = unit -> Tuple.t option
type factory = unit -> cursor

(** Pull a cursor to exhaustion. *)
val drain : cursor -> Tuple.t list

(** Compile a physical plan. Audit operators resolve their ID tables from
    the context at open time; raises {!Exec_error} at open if a table was
    not installed. *)
val compile : Exec_ctx.t -> Plan.Physical.t -> factory

(** Sorter over materialized rows (keys compiled once, stable sort by the
    key vector) — shared with the vectorized engine's Sort/TopK kernels. *)
val compile_sorter :
  Exec_ctx.t ->
  (Plan.Scalar.t * Sql.Ast.order_dir) list ->
  Tuple.t list ->
  Tuple.t list

(** Compile and run, materializing all rows. *)
val run_list : Exec_ctx.t -> Plan.Physical.t -> Tuple.t list

(** Compile and run, counting rows without materializing (benchmarks). *)
val run_count : Exec_ctx.t -> Plan.Physical.t -> int
