(** Push-based compiled execution (data-centric): each pipeline between
    blocking operators becomes one fused closure, rows flow through plain
    function composition instead of per-operator getNext virtual calls.

    The engine replays the row engine's observable behaviour exactly:

    - {e open-time effect order}: a factory invocation performs the same
      work, in the same order, as opening the corresponding row cursor —
      blocking operators build/drain at open (hash joins build the right
      side before opening the left, Sort/TopK/HashAgg consume their child
      at open, Except/Intersect materialize the right side first), so
      budget cancellations land at the same point in the same order;
    - {e budget accounting}: [note_scanned] per base-table row before the
      row is pushed, [note_materialized] at exactly the row engine's
      buffering points;
    - {e audit evidence}: the probe is the same single hash lookup and
      generation-mark store, inlined into the pipeline body;
    - {e metrics}: nodes are registered in the row engine's registration
      order (pre-order; delegated subtrees register through
      {!Executor.compile} at the same traversal position) and per-node
      row counts match. Time is attributed per pipeline: blocking
      operators record their build phase, the root records the whole run.

    Step-aside: [Apply], [Index_nl_join] and bare [Limit] subtrees run on
    the row engine behind a pull→push adapter (their protocols — the
    correlated parameter stack, the probe-chain metrics contract and
    stop-pulling early exit — are pull-bound); an armed fault kit
    delegates the whole plan so per-operator fault sites are unchanged. *)

open Storage
open Plan

type sink = Tuple.t -> unit
type source = sink -> unit
type factory = unit -> source

let scan_chunk = 256

let resolve_table ctx table =
  match Catalog.find_opt ctx.Exec_ctx.catalog table with
  | Some t -> t
  | None ->
    raise (Executor.Exec_error (Printf.sprintf "unknown table %s" table))

let hide_for ctx table =
  match ctx.Exec_ctx.hide with
  | Some (ht, col, v)
    when String.lowercase_ascii ht = String.lowercase_ascii table ->
    Some (col, v)
  | _ -> None

(* Drain a child source into a buffer a blocking operator will hold live,
   charging each tuple against the memory budget (Executor.drain_tracked). *)
let drain_tracked ctx (src : source) : Tuple.t list =
  let acc = ref [] in
  src (fun row ->
      Exec_ctx.note_materialized ctx;
      acc := row :: !acc);
  List.rev !acc

(* Stats lookup that compiles away when collection is off. *)
let stats_of ctx node =
  if Metrics.enabled ctx.Exec_ctx.metrics then
    Some (Metrics.register ctx.Exec_ctx.metrics node)
  else None

let count_row st =
  match st with
  | Some s -> s.Metrics.rows <- s.Metrics.rows + 1
  | None -> ()

(* Time a blocking operator's build phase onto its own stats record, so
   EXPLAIN ANALYZE shows per-pipeline time at each pipeline boundary. *)
let timed st f =
  match st with
  | None -> f ()
  | Some s ->
    let t0 = Metrics.now_s () in
    let r = f () in
    s.Metrics.time_s <- s.Metrics.time_s +. (Metrics.now_s () -. t0);
    r

(* Pull→push adapter around the row engine, for subtrees the push engine
   steps aside from. [Executor.compile] registers the subtree's metrics
   and applies its own guard/fault wrappers. *)
let delegate ctx plan : factory =
  let f = Executor.compile ctx plan in
  fun () ->
    let c = f () in
    fun sink ->
      let rec loop () =
        match c () with
        | None -> ()
        | Some row ->
          sink row;
          loop ()
      in
      loop ()

let rec compile (ctx : Exec_ctx.t) (plan : Physical.t) : factory =
  match plan.Physical.op with
  (* Pull-bound protocols: step aside to the row engine. *)
  | Physical.Apply _ | Physical.Index_nl_join _ | Physical.Limit _ ->
    delegate ctx plan
  | _ when Engine_core.Faultkit.armed ctx.Exec_ctx.faults ->
    (* Per-operator fallback: fault sites live on row-engine getNext. *)
    delegate ctx plan
  | _ ->
    let base =
      if not (Metrics.enabled ctx.Exec_ctx.metrics) then compile_op ctx plan
      else begin
        let st = Metrics.register ctx.Exec_ctx.metrics plan in
        let f = compile_op ctx plan in
        fun () ->
          st.Metrics.opens <- st.Metrics.opens + 1;
          let src = f () in
          fun sink ->
            src (fun row ->
                st.Metrics.rows <- st.Metrics.rows + 1;
                sink row)
      end
    in
    if not (Exec_ctx.guards_armed ctx) then base
    else
      fun () ->
        Exec_ctx.check_deadline ctx;
        let src = base () in
        fun sink ->
          src (fun row ->
              Exec_ctx.check_guards ctx;
              sink row)

and compile_op (ctx : Exec_ctx.t) (plan : Physical.t) : factory =
  match plan.Physical.op with
  | Physical.Seq_scan { table; cols; _ } ->
    if table = "$dual" then fun () sink -> sink [||]
    else
      fun () ->
        let t = resolve_table ctx table in
        let hide = hide_for ctx table in
        fun sink -> scan_source ctx t ~hide ~cols sink
  | Physical.Filter
      { pred; child = { Physical.op = Physical.Seq_scan { table; cols; _ }; _ }
                      as scan_node }
    when table <> "$dual" ->
    compile_filter_scan ctx ~pred ~table ~cols ~scan_node
  | Physical.Filter { pred; child } ->
    let cfact = compile ctx child in
    let test = Expr_compile.compile_pred ctx pred in
    fun () ->
      let csrc = cfact () in
      fun sink -> csrc (fun row -> if test row then sink row)
  | Physical.Project { cols; child } ->
    let cfact = compile ctx child in
    let exprs =
      Array.of_list (List.map (fun (e, _) -> Expr_compile.compile ctx e) cols)
    in
    fun () ->
      let csrc = cfact () in
      fun sink -> csrc (fun row -> sink (Array.map (fun f -> f row) exprs))
  | Physical.Hash_join { kind; lkeys; rkeys; residual; left; right; right_arity }
    ->
    let st = stats_of ctx plan in
    let lfact = compile ctx left in
    let rfact = compile ctx right in
    let lkeys = Array.map (Expr_compile.compile ctx) lkeys in
    let rkeys = Array.map (Expr_compile.compile ctx) rkeys in
    let residual = Option.map (Expr_compile.compile_pred ctx) residual in
    let null_pad = Array.make right_arity Value.Null in
    fun () ->
      (* Build the right side at open, as the row engine does. *)
      let tbl = Tuple.Hashtbl_t.create 1024 in
      timed st (fun () ->
          let rsrc = rfact () in
          rsrc (fun row ->
              Exec_ctx.note_materialized ctx;
              let k = Array.map (fun f -> f row) rkeys in
              if not (Array.exists Value.is_null k) then
                Tuple.Hashtbl_t.replace tbl k
                  (row
                  :: (try Tuple.Hashtbl_t.find tbl k with Not_found -> []))));
      let probe lrow =
        let k = Array.map (fun f -> f lrow) lkeys in
        if Array.exists Value.is_null k then []
        else
          match Tuple.Hashtbl_t.find_opt tbl k with
          | Some rows -> List.rev rows
          | None -> []
      in
      let lsrc = lfact () in
      fun sink -> lsrc (join_emit ~kind ~null_pad ~residual ~probe sink)
  | Physical.Nl_join { kind; pred; left; right; right_arity } ->
    let st = stats_of ctx plan in
    let lfact = compile ctx left in
    let rfact = compile ctx right in
    let pred = Option.map (Expr_compile.compile_pred ctx) pred in
    let null_pad = Array.make right_arity Value.Null in
    fun () ->
      let right_rows = timed st (fun () -> drain_tracked ctx (rfact ())) in
      let probe _ = right_rows in
      let lsrc = lfact () in
      fun sink -> lsrc (join_emit ~kind ~null_pad ~residual:pred ~probe sink)
  | Physical.Hash_semi_join { anti; left; left_key; right; right_key } ->
    let st = stats_of ctx plan in
    let lfact = compile ctx left in
    let rfact = compile ctx right in
    let lkey = Expr_compile.compile ctx left_key in
    let rkey = Expr_compile.compile ctx right_key in
    fun () ->
      let keys = Value.Hashtbl_v.create 256 in
      timed st (fun () ->
          let rsrc = rfact () in
          rsrc (fun row ->
              let k = rkey row in
              if not (Value.is_null k) then begin
                Exec_ctx.note_materialized ctx;
                Value.Hashtbl_v.replace keys k ()
              end));
      let lsrc = lfact () in
      fun sink ->
        lsrc (fun row ->
            let k = lkey row in
            let matched =
              (not (Value.is_null k)) && Value.Hashtbl_v.mem keys k
            in
            if matched <> anti then sink row)
  | Physical.Hash_agg { keys; aggs; child } -> (
    (* The generic path is always compiled (and its operators registered
       for metrics); the fused columnar kernel takes over at open time
       when the store and the expression shapes allow it. *)
    let generic = compile_group ctx plan keys aggs child in
    match fused_scalar_agg ctx plan keys aggs child with
    | None -> generic
    | Some open_fused ->
      fun () ->
        (match open_fused () with
        | Some src -> src
        | None -> generic ()))
  | Physical.Sort { keys; child } ->
    let st = stats_of ctx plan in
    let cfact = compile ctx child in
    let sort_rows = Executor.compile_sorter ctx keys in
    fun () ->
      let sorted =
        timed st (fun () -> sort_rows (drain_tracked ctx (cfact ())))
      in
      fun sink -> List.iter sink sorted
  | Physical.Top_k { n; keys; child } ->
    let st = stats_of ctx plan in
    let cfact = compile ctx child in
    let sort_rows = Executor.compile_sorter ctx keys in
    fun () ->
      let sorted =
        timed st (fun () -> sort_rows (drain_tracked ctx (cfact ())))
      in
      fun sink ->
        let left = ref n in
        List.iter
          (fun row ->
            if !left > 0 then begin
              decr left;
              sink row
            end)
          sorted
  | Physical.Limit _ | Physical.Apply _ | Physical.Index_nl_join _ ->
    assert false (* delegated in [compile] *)
  | Physical.Distinct child ->
    let cfact = compile ctx child in
    fun () ->
      let csrc = cfact () in
      fun sink ->
        let seen = Tuple.Hashtbl_t.create 256 in
        csrc (fun row ->
            if not (Tuple.Hashtbl_t.mem seen row) then begin
              Tuple.Hashtbl_t.replace seen row ();
              sink row
            end)
  | Physical.Set_op { op; left; right } -> (
    let st = stats_of ctx plan in
    let lfact = compile ctx left in
    let rfact = compile ctx right in
    match op with
    | Sql.Ast.Union_all ->
      fun () ->
        let lsrc = lfact () in
        let rsrc = rfact () in
        fun sink ->
          lsrc sink;
          rsrc sink
    | Sql.Ast.Union ->
      fun () ->
        let lsrc = lfact () in
        let rsrc = rfact () in
        fun sink ->
          let seen = Tuple.Hashtbl_t.create 256 in
          let dedup row =
            if not (Tuple.Hashtbl_t.mem seen row) then begin
              Tuple.Hashtbl_t.replace seen row ();
              sink row
            end
          in
          lsrc dedup;
          rsrc dedup
    | Sql.Ast.Except | Sql.Ast.Intersect ->
      let keep_if_in_right = op = Sql.Ast.Intersect in
      fun () ->
        (* Materialize the right side at open, before the left opens. *)
        let right_set = Tuple.Hashtbl_t.create 256 in
        timed st (fun () ->
            let rsrc = rfact () in
            rsrc (fun row ->
                Exec_ctx.note_materialized ctx;
                Tuple.Hashtbl_t.replace right_set row ()));
        let lsrc = lfact () in
        fun sink ->
          let emitted = Tuple.Hashtbl_t.create 256 in
          lsrc (fun row ->
              if
                Tuple.Hashtbl_t.mem right_set row = keep_if_in_right
                && not (Tuple.Hashtbl_t.mem emitted row)
              then begin
                Tuple.Hashtbl_t.replace emitted row ();
                sink row
              end))
  | Physical.Audit_probe { audit_name; id_col; child } ->
    let name = String.lowercase_ascii audit_name in
    let st = Metrics.find ctx.Exec_ctx.metrics plan in
    let cfact = compile ctx child in
    fun () ->
      let sensitive =
        match Exec_ctx.audit_ids ctx ~audit_name:name with
        | Some s -> s
        | None ->
          raise
            (Executor.Exec_error
               (Printf.sprintf
                  "audit operator for %s: sensitive-ID set not installed"
                  audit_name))
      in
      let csrc = cfact () in
      fun sink ->
        csrc (fun row ->
            (* The inlined probe: one hash lookup, a hit stores the query
               generation into the mark — never filters (§IV-A2). *)
            ctx.Exec_ctx.audit_probes <- ctx.Exec_ctx.audit_probes + 1;
            (match st with
            | Some s -> s.Metrics.probes <- s.Metrics.probes + 1
            | None -> ());
            (match Value.Hashtbl_v.find_opt sensitive row.(id_col) with
            | Some mark ->
              ctx.Exec_ctx.audit_hits <- ctx.Exec_ctx.audit_hits + 1;
              (match st with
              | Some s -> s.Metrics.hits <- s.Metrics.hits + 1
              | None -> ());
              if !mark <> ctx.Exec_ctx.generation then
                mark := ctx.Exec_ctx.generation
            | None -> ());
            sink row)

(* The base-table scan loop driving a pipeline: chunked row fills (no
   per-row Option or closure allocation). With any guard armed the scan
   budget is charged per row before the push — identical rows_scanned
   and cancellation point to the row engine's cursor; with no guards
   armed nothing can cancel mid-scan, so the charge collapses to one
   O(1) [note_scanned_many] per chunk (the batch engine's contract) and
   the final counter is the same. The [?hide] virtual delete goes
   through the cursor, like the row engine. *)
and scan_source ctx t ~hide ~cols sink =
  match hide with
  | Some _ ->
    let c = Table.cursor ?hide t in
    let rec loop () =
      match c () with
      | None -> ()
      | Some row ->
        Exec_ctx.note_scanned ctx;
        sink
          (match cols with
          | None -> row
          | Some idxs -> Tuple.project row idxs);
        loop ()
    in
    loop ()
  | None ->
    let buf = Array.make scan_chunk [||] in
    let slot = ref 0 in
    let per_row = Exec_ctx.guards_armed ctx in
    let rec loop () =
      let n =
        match cols with
        | None -> Table.fill_chunk t ~slot buf ~max:scan_chunk
        | Some idxs ->
          Table.fill_chunk_proj t ~slot buf ~max:scan_chunk ~cols:idxs
      in
      if n > 0 then begin
        if per_row then
          for i = 0 to n - 1 do
            Exec_ctx.note_scanned ctx;
            sink buf.(i)
          done
        else begin
          Exec_ctx.note_scanned_many ctx n;
          for i = 0 to n - 1 do
            sink buf.(i)
          done
        end;
        loop ()
      end
    in
    loop ()

(* Fused Filter-over-scan pipeline head. On a columnar table the
   predicate compiles to a slot-level {!Col_pred} kernel: only surviving
   slots are materialized (late materialization without chunk or
   selection-vector bookkeeping — this is where the push engine beats
   the batch engine on selective scans). On heap tables the predicate is
   remapped through the scan projection ({!Scalar.shift_cols}) and
   tested against the base row, so only survivors pay the projection
   allocation. Budget charging is per row whenever a guard is armed
   (cancellation-point parity with the row engine), one bulk charge
   otherwise. The scan node's metrics are maintained inline so EXPLAIN
   ANALYZE still shows scanned-vs-surviving rows per node. *)
and compile_filter_scan ctx ~pred ~table ~cols ~scan_node : factory =
  let scan_st = stats_of ctx scan_node in
  let raw_pred =
    match cols with
    | None -> pred
    | Some idxs -> Scalar.shift_cols (fun i -> idxs.(i)) pred
  in
  let test_raw = Expr_compile.compile_pred ctx raw_pred in
  let project row =
    match cols with None -> row | Some idxs -> Tuple.project row idxs
  in
  fun () ->
    let t = resolve_table ctx table in
    let hide = hide_for ctx table in
    (match scan_st with
    | Some s -> s.Metrics.opens <- s.Metrics.opens + 1
    | None -> ());
    let guards = Exec_ctx.guards_armed ctx in
    let kernel =
      match hide with
      | Some _ -> None
      | None ->
        if ctx.Exec_ctx.interpret_exprs then None
        else (
          match Table.column_store t with
          | None -> None
          | Some cs ->
            Option.map (fun k -> (cs, k)) (Col_pred.compile ctx cs raw_pred))
    in
    match kernel with
    | Some (cs, k) ->
      fun sink ->
        let stop = Table.next_slot t in
        if guards then
          for s = 0 to stop - 1 do
            if Column_store.is_live cs s then begin
              Exec_ctx.note_scanned ctx;
              Exec_ctx.check_guards ctx;
              count_row scan_st;
              if k s = Col_pred.holds then
                sink
                  (match cols with
                  | None -> Column_store.read cs s
                  | Some idxs -> Column_store.read_proj cs idxs s)
            end
          done
        else begin
          let scanned = ref 0 in
          for s = 0 to stop - 1 do
            if Column_store.is_live cs s then begin
              incr scanned;
              if k s = Col_pred.holds then
                sink
                  (match cols with
                  | None -> Column_store.read cs s
                  | Some idxs -> Column_store.read_proj cs idxs s)
            end
          done;
          Exec_ctx.note_scanned_many ctx !scanned;
          match scan_st with
          | Some s -> s.Metrics.rows <- s.Metrics.rows + !scanned
          | None -> ()
        end
    | None -> (
      match hide with
      | Some _ ->
        (* The virtual-delete path stays on the cursor, like the row
           engine; survivors-only projection still applies. *)
        fun sink ->
          let c = Table.cursor ?hide t in
          let rec loop () =
            match c () with
            | None -> ()
            | Some row ->
              Exec_ctx.note_scanned ctx;
              if guards then Exec_ctx.check_guards ctx;
              count_row scan_st;
              if test_raw row then sink (project row);
              loop ()
          in
          loop ()
      | None ->
        fun sink ->
          let buf = Array.make scan_chunk [||] in
          let slot = ref 0 in
          let rec loop () =
            let n = Table.fill_chunk t ~slot buf ~max:scan_chunk in
            if n > 0 then begin
              if guards then
                for i = 0 to n - 1 do
                  Exec_ctx.note_scanned ctx;
                  Exec_ctx.check_guards ctx;
                  count_row scan_st;
                  let row = buf.(i) in
                  if test_raw row then sink (project row)
                done
              else begin
                Exec_ctx.note_scanned_many ctx n;
                (match scan_st with
                | Some s -> s.Metrics.rows <- s.Metrics.rows + n
                | None -> ());
                for i = 0 to n - 1 do
                  let row = buf.(i) in
                  if test_raw row then sink (project row)
                done
              end;
              loop ()
            end
          in
          loop ())

(* Per-left-row probe emission shared by hash and nested-loop joins:
   candidates joined in arrival order, residual applied on the combined
   row, LEFT JOIN null-pads when nothing survives (Executor.join_emit). *)
and join_emit ~kind ~null_pad ~residual ~probe sink : sink =
 fun lrow ->
  let cands = probe lrow in
  let joined =
    List.filter_map
      (fun rrow ->
        let combined = Tuple.append lrow rrow in
        match residual with
        | None -> Some combined
        | Some test -> if test combined then Some combined else None)
      cands
  in
  match (joined, kind) with
  | [], Logical.J_left -> sink (Tuple.append lrow null_pad)
  | _, _ -> List.iter sink joined

(* Fused scalar aggregation: a scalar Hash_agg over (Filter over)
   Seq_scan on a columnar table collapses to one pass over the column
   vectors — the predicate as a {!Col_pred} kernel over slot numbers and
   the aggregate arguments as unboxed {!Col_pred.compile_num} kernels
   feeding {!Aggregate.add_int}/{!add_float}. No input tuple is ever
   materialized, and unlike the batch engine's equivalent there is no
   selection vector or chunk bookkeeping between predicate and update.

   The compile-time half recognizes the plan shape (an Audit_probe child
   breaks the pattern and keeps its evidence; an armed fault kit never
   reaches here — the whole plan is delegated). The open-time half
   checks everything session-dependent: heap tables, a [?hide]
   partition, the interpreter oracle, or any armed guard (whose
   cancellation must land on the exact row) fall back to the generic
   push pipeline. The bypassed scan/filter operators keep their metrics
   entries (registered by the generic compile) with rows = scanned /
   survivors, as in the unfused pipeline. *)
and fused_scalar_agg ctx plan keys aggs child : (unit -> source option) option
    =
  if keys <> [] then None
  else
    let parts =
      match child.Physical.op with
      | Physical.Seq_scan { table; cols; _ } when table <> "$dual" ->
        Some (table, cols, None, child)
      | Physical.Filter
          { pred;
            child =
              { Physical.op = Physical.Seq_scan { table; cols; _ }; _ } as scan
          }
        when table <> "$dual" ->
        Some (table, cols, Some pred, scan)
      | _ -> None
    in
    match parts with
    | None -> None
    | Some (table, cols, pred, scan_node) ->
      let shift e =
        match cols with
        | None -> e
        | Some idxs -> Scalar.shift_cols (fun i -> idxs.(i)) e
      in
      let raw_pred = Option.map shift pred in
      let agg_arr = Array.of_list aggs in
      let raw_args =
        Array.map (fun a -> Option.map shift a.Logical.arg) agg_arr
      in
      let agg_st =
        if Metrics.enabled ctx.Exec_ctx.metrics then
          Metrics.find ctx.Exec_ctx.metrics plan
        else None
      in
      Some
        (fun () ->
          if ctx.Exec_ctx.interpret_exprs || Exec_ctx.guards_armed ctx then
            None
          else
            let t = resolve_table ctx table in
            if hide_for ctx table <> None then None
            else
              match Table.column_store t with
              | None -> None
              | Some cs -> (
                let pred_kern =
                  match raw_pred with
                  | None -> Some None
                  | Some p -> (
                    match Col_pred.compile ctx cs p with
                    | Some k -> Some (Some k)
                    | None -> None)
                in
                match pred_kern with
                | None -> None
                | Some pred_kern -> (
                  let upd = function
                    | None -> Some (fun st _ -> Aggregate.update st None)
                    | Some e -> (
                      match Col_pred.compile_num ctx cs e with
                      | Some (Col_pred.Kint f, nullk) ->
                        Some
                          (fun st s ->
                            if not (nullk s) then Aggregate.add_int st (f s))
                      | Some (Col_pred.Kfloat f, nullk) ->
                        Some
                          (fun st s ->
                            if not (nullk s) then Aggregate.add_float st (f s))
                      | None -> None)
                  in
                  let upds = Array.map upd raw_args in
                  if Array.exists Option.is_none upds then None
                  else begin
                    let upds = Array.map Option.get upds in
                    let nagg = Array.length upds in
                    let states = Array.map Aggregate.create agg_arr in
                    let seen = ref false in
                    let scanned = ref 0 in
                    let kept = ref 0 in
                    (* The aggregation runs at open, where the generic
                       scalar path drains its child. *)
                    timed agg_st (fun () ->
                        let stop = Table.next_slot t in
                        match pred_kern with
                        | Some k ->
                          for s = 0 to stop - 1 do
                            if Column_store.is_live cs s then begin
                              incr scanned;
                              if k s = Col_pred.holds then begin
                                incr kept;
                                if not !seen then begin
                                  seen := true;
                                  Exec_ctx.note_materialized ctx
                                end;
                                for i = 0 to nagg - 1 do
                                  (Array.unsafe_get upds i)
                                    (Array.unsafe_get states i)
                                    s
                                done
                              end
                            end
                          done
                        | None ->
                          for s = 0 to stop - 1 do
                            if Column_store.is_live cs s then begin
                              incr scanned;
                              incr kept;
                              if not !seen then begin
                                seen := true;
                                Exec_ctx.note_materialized ctx
                              end;
                              for i = 0 to nagg - 1 do
                                (Array.unsafe_get upds i)
                                  (Array.unsafe_get states i)
                                  s
                              done
                            end
                          done);
                    Exec_ctx.note_scanned_many ctx !scanned;
                    if Metrics.enabled ctx.Exec_ctx.metrics then begin
                      (match Metrics.find ctx.Exec_ctx.metrics scan_node with
                      | Some s ->
                        s.Metrics.opens <- s.Metrics.opens + 1;
                        s.Metrics.rows <- s.Metrics.rows + !scanned
                      | None -> ());
                      match pred with
                      | None -> ()
                      | Some _ -> (
                        match Metrics.find ctx.Exec_ctx.metrics child with
                        | Some s ->
                          s.Metrics.opens <- s.Metrics.opens + 1;
                          s.Metrics.rows <- s.Metrics.rows + !kept
                        | None -> ())
                    end;
                    let out = Array.map Aggregate.final states in
                    Some (fun sink -> sink out)
                  end)))

and compile_group ctx plan keys aggs child : factory =
  let st = stats_of ctx plan in
  let cfact = compile ctx child in
  let key_exprs =
    Array.of_list (List.map (fun (e, _) -> Expr_compile.compile ctx e) keys)
  in
  let agg_list = Array.of_list aggs in
  let agg_args =
    Array.map
      (fun a -> Option.map (Expr_compile.compile ctx) a.Logical.arg)
      agg_list
  in
  let update_states states row =
    Array.iteri
      (fun i s ->
        let v =
          match agg_args.(i) with None -> None | Some f -> Some (f row)
        in
        Aggregate.update s v)
      states
  in
  if Array.length key_exprs = 0 then
    (* Scalar aggregate: no grouping hashtable in the loop body. *)
    fun () ->
      let states = ref None in
      timed st (fun () ->
          let csrc = cfact () in
          csrc (fun row ->
              let sts =
                match !states with
                | Some s -> s
                | None ->
                  Exec_ctx.note_materialized ctx;
                  let s = Array.map Aggregate.create agg_list in
                  states := Some s;
                  s
              in
              update_states sts row));
      let out =
        match !states with
        | Some sts -> Array.map Aggregate.final sts
        | None ->
          (* Scalar aggregate over empty input: one default row. *)
          Array.map (fun a -> Aggregate.final (Aggregate.create a)) agg_list
      in
      fun sink -> sink out
  else
    fun () ->
      let groups : Aggregate.state array Tuple.Hashtbl_t.t =
        Tuple.Hashtbl_t.create 256
      in
      let order = ref [] in
      timed st (fun () ->
          let csrc = cfact () in
          csrc (fun row ->
              let k = Array.map (fun f -> f row) key_exprs in
              let states =
                match Tuple.Hashtbl_t.find_opt groups k with
                | Some s -> s
                | None ->
                  Exec_ctx.note_materialized ctx;
                  let s = Array.map Aggregate.create agg_list in
                  Tuple.Hashtbl_t.replace groups k s;
                  order := k :: !order;
                  s
              in
              update_states states row));
      let pending =
        List.rev_map
          (fun k ->
            let states = Tuple.Hashtbl_t.find groups k in
            Tuple.append k (Array.map Aggregate.final states))
          !order
      in
      fun sink -> List.iter sink pending

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let native_root (plan : Physical.t) =
  match plan.Physical.op with
  | Physical.Apply _ | Physical.Index_nl_join _ | Physical.Limit _ -> false
  | _ -> true

(* Root-inclusive timing for EXPLAIN ANALYZE: the root stats record gets
   the whole run (delegated roots are timed by the row engine itself). *)
let timed_run ctx plan f =
  if
    Metrics.enabled ctx.Exec_ctx.metrics
    && native_root plan
    && not (Engine_core.Faultkit.armed ctx.Exec_ctx.faults)
  then begin
    let t0 = Metrics.now_s () in
    let r = f () in
    (match Metrics.find ctx.Exec_ctx.metrics plan with
    | Some st ->
      st.Metrics.time_s <- st.Metrics.time_s +. (Metrics.now_s () -. t0)
    | None -> ());
    r
  end
  else f ()

let run_list ctx plan : Tuple.t list =
  let fact = compile ctx plan in
  timed_run ctx plan (fun () ->
      let src = fact () in
      let acc = ref [] in
      src (fun row -> acc := row :: !acc);
      List.rev !acc)

let run_count ctx plan : int =
  let fact = compile ctx plan in
  timed_run ctx plan (fun () ->
      let src = fact () in
      let n = ref 0 in
      src (fun _ -> incr n);
      !n)
