(** EXPLAIN ANALYZE rendering over the physical plan tree: per-operator
    estimated-vs-actual row counts, loop counts, inclusive wall time and
    audit probe/hit counters, plus a query-level summary line. *)

(** Per-node annotation for a plan whose metrics were collected into [m]:
    [(est rows=E actual rows=N loops=L time=Tms [probes=P hits=H])], or
    [(est rows=E, never executed)]. *)
val annot : Metrics.t -> Plan.Physical.t -> string option

(** Render the annotated tree plus summary for the metrics collected by
    the last run of [plan] under [ctx]. *)
val render : Exec_ctx.t -> Plan.Physical.t -> string
