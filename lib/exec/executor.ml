(** Volcano-style plan execution.

    [compile ctx plan] performs the physical planning once (hash- vs
    nested-loop join selection, equi-key extraction) and returns a cursor
    *factory*; invoking the factory opens a fresh execution. Correlated
    [Apply] operators invoke their inner factory once per outer row, with the
    outer row pushed on the context's parameter stack.

    The physical audit operator (§IV-A2) is a no-op hash probe: it looks up
    the ID column of every passing row in the audit expression's materialized
    sensitive-ID set and records hits in the per-query ACCESSED state. It
    never filters — instrumented plans return exactly the rows of the plain
    plan. *)

open Storage
open Plan

exception Exec_error of string

type cursor = unit -> Tuple.t option
type factory = unit -> cursor

let drain (c : cursor) : Tuple.t list =
  let rec go acc = match c () with None -> List.rev acc | Some r -> go (r :: acc) in
  go []

(* Drain into a buffer a blocking operator will hold live, charging each
   tuple against the context's memory budget. *)
let drain_tracked ctx (c : cursor) : Tuple.t list =
  let rec go acc =
    match c () with
    | None -> List.rev acc
    | Some r ->
      Exec_ctx.note_materialized ctx;
      go (r :: acc)
  in
  go []

(* Equi-join key extraction: partition join-predicate conjuncts into
   (left_key, right_key) pairs and a residual predicate. *)
let split_equi ~left_arity pred =
  let conjs = match pred with None -> [] | Some p -> Scalar.conjuncts p in
  let la = left_arity in
  let classify c =
    match c with
    | Scalar.Binop (Sql.Ast.Eq, a, b) -> (
      let fa = Scalar.free_cols a and fb = Scalar.free_cols b in
      let all_left l = l <> [] && List.for_all (fun i -> i < la) l in
      let all_right l = l <> [] && List.for_all (fun i -> i >= la) l in
      let shift = Scalar.shift_cols (fun i -> i - la) in
      if all_left fa && all_right fb then `Equi (a, shift b)
      else if all_left fb && all_right fa then `Equi (b, shift a)
      else `Residual c)
    | _ -> `Residual c
  in
  List.fold_left
    (fun (keys, res) c ->
      match classify c with
      | `Equi (l, r) -> ((l, r) :: keys, res)
      | `Residual c -> (keys, c :: res))
    ([], []) conjs
  |> fun (keys, res) -> (List.rev keys, List.rev res)

(* When metrics collection is enabled, every compiled operator is wrapped so
   each getNext call is counted and timed against the node's [op_stats].
   Registration happens before children compile, so reports come out in plan
   pre-order; the record is found again later by physical node identity
   (EXPLAIN ANALYZE walks the same tree). *)
let rec compile (ctx : Exec_ctx.t) (plan : Logical.t) : factory =
  let base =
    if not (Metrics.enabled ctx.Exec_ctx.metrics) then compile_op ctx plan
    else begin
      let st = Metrics.register ctx.Exec_ctx.metrics plan in
      let f = compile_op ctx plan in
      fun () ->
        st.Metrics.opens <- st.Metrics.opens + 1;
        let c = f () in
        fun () ->
          let t0 = Metrics.now_s () in
          let r = c () in
          st.Metrics.time_s <- st.Metrics.time_s +. (Metrics.now_s () -. t0);
          st.Metrics.calls <- st.Metrics.calls + 1;
          (match r with
          | Some _ -> st.Metrics.rows <- st.Metrics.rows + 1
          | None -> ());
          r
    end
  in
  (* Guard/fault wrapper, compiled in only when a guard or a fault plan is
     armed — the plain hot path carries no per-row cost. *)
  let faults_armed = Engine_core.Faultkit.armed ctx.Exec_ctx.faults in
  if not (Exec_ctx.guards_armed ctx || faults_armed) then base
  else begin
    let label = Metrics.label_of plan in
    fun () ->
      Exec_ctx.check_deadline ctx;
      let c = base () in
      fun () ->
        if faults_armed then
          Engine_core.Faultkit.on_get_next ctx.Exec_ctx.faults ~op:label;
        Exec_ctx.check_guards ctx;
        c ()
  end

and compile_op (ctx : Exec_ctx.t) (plan : Logical.t) : factory =
  match plan with
  | Logical.Scan { table; cols; _ } -> compile_scan ctx table cols
  | Logical.Filter { pred; child } ->
    let cf = compile ctx child in
    fun () ->
      let c = cf () in
      let rec next () =
        match c () with
        | None -> None
        | Some row -> if Eval.truthy ctx row pred then Some row else next ()
      in
      next
  | Logical.Project { cols; child } ->
    let cf = compile ctx child in
    let exprs = Array.of_list (List.map fst cols) in
    fun () ->
      let c = cf () in
      fun () ->
        (match c () with
        | None -> None
        | Some row -> Some (Array.map (Eval.eval ctx row) exprs))
  | Logical.Join { kind; pred; left; right } ->
    compile_join ctx ~node:plan kind pred left right
  | Logical.Semi_join { anti; left; left_key; right; right_key } ->
    let lf = compile ctx left in
    let rf = compile ctx right in
    fun () ->
      let keys = Value.Hashtbl_v.create 256 in
      let rc = rf () in
      let rec build () =
        match rc () with
        | None -> ()
        | Some row ->
          let k = Eval.eval ctx row right_key in
          if not (Value.is_null k) then begin
            Exec_ctx.note_materialized ctx;
            Value.Hashtbl_v.replace keys k ()
          end;
          build ()
      in
      build ();
      let lc = lf () in
      let rec next () =
        match lc () with
        | None -> None
        | Some row ->
          let k = Eval.eval ctx row left_key in
          let matched =
            (not (Value.is_null k)) && Value.Hashtbl_v.mem keys k
          in
          if matched <> anti then Some row else next ()
      in
      next
  | Logical.Apply { kind; outer; inner; _ } -> compile_apply ctx kind outer inner
  | Logical.Group_by { keys; aggs; child } -> compile_group ctx keys aggs child
  | Logical.Sort { keys; child } -> compile_sort ctx keys child
  | Logical.Limit { n; child } ->
    let cf = compile ctx child in
    fun () ->
      let c = cf () in
      let remaining = ref n in
      fun () ->
        if !remaining <= 0 then None
        else begin
          match c () with
          | None -> None
          | Some row ->
            decr remaining;
            Some row
        end
  | Logical.Distinct child ->
    let cf = compile ctx child in
    fun () ->
      let c = cf () in
      let seen = Tuple.Hashtbl_t.create 256 in
      let rec next () =
        match c () with
        | None -> None
        | Some row ->
          if Tuple.Hashtbl_t.mem seen row then next ()
          else begin
            Tuple.Hashtbl_t.replace seen row ();
            Some row
          end
      in
      next
  | Logical.Set_op { op; left; right } -> (
    let lf = compile ctx left in
    let rf = compile ctx right in
    match op with
    | Sql.Ast.Union_all ->
      fun () ->
        let lc = lf () in
        let rc = rf () in
        let on_left = ref true in
        let rec next () =
          if !on_left then
            match lc () with
            | Some r -> Some r
            | None ->
              on_left := false;
              next ()
          else rc ()
        in
        next
    | Sql.Ast.Union ->
      fun () ->
        let seen = Tuple.Hashtbl_t.create 256 in
        let lc = lf () in
        let rc = rf () in
        let on_left = ref true in
        let rec next () =
          let candidate =
            if !on_left then
              match lc () with
              | Some r -> Some r
              | None ->
                on_left := false;
                rc ()
            else rc ()
          in
          match candidate with
          | None -> None
          | Some row ->
            if Tuple.Hashtbl_t.mem seen row then next ()
            else begin
              Tuple.Hashtbl_t.replace seen row ();
              Some row
            end
        in
        next
    | Sql.Ast.Except | Sql.Ast.Intersect ->
      let keep_if_in_right = op = Sql.Ast.Intersect in
      fun () ->
        let right_set = Tuple.Hashtbl_t.create 256 in
        let rc = rf () in
        let rec build () =
          match rc () with
          | None -> ()
          | Some r ->
            Exec_ctx.note_materialized ctx;
            Tuple.Hashtbl_t.replace right_set r ();
            build ()
        in
        build ();
        let emitted = Tuple.Hashtbl_t.create 256 in
        let lc = lf () in
        let rec next () =
          match lc () with
          | None -> None
          | Some row ->
            if
              Tuple.Hashtbl_t.mem right_set row = keep_if_in_right
              && not (Tuple.Hashtbl_t.mem emitted row)
            then begin
              Tuple.Hashtbl_t.replace emitted row ();
              Some row
            end
            else next ()
        in
        next)
  | Logical.Audit { audit_name; id_col; child } ->
    let cf = compile ctx child in
    let name = String.lowercase_ascii audit_name in
    let st = Metrics.find ctx.Exec_ctx.metrics plan in
    fun () ->
      let sensitive =
        match Exec_ctx.audit_ids ctx ~audit_name:name with
        | Some s -> s
        | None ->
          raise
            (Exec_error
               (Printf.sprintf
                  "audit operator for %s: sensitive-ID set not installed"
                  audit_name))
      in
      let c = cf () in
      fun () ->
        match c () with
        | None -> None
        | Some row ->
          ctx.Exec_ctx.audit_probes <- ctx.Exec_ctx.audit_probes + 1;
          (match st with
          | Some s -> s.Metrics.probes <- s.Metrics.probes + 1
          | None -> ());
          (* One hash probe per row; a hit marks the ID as accessed by
             storing the query generation into the probe table entry. *)
          (match Value.Hashtbl_v.find_opt sensitive row.(id_col) with
          | Some mark ->
            ctx.Exec_ctx.audit_hits <- ctx.Exec_ctx.audit_hits + 1;
            (match st with
            | Some s -> s.Metrics.hits <- s.Metrics.hits + 1
            | None -> ());
            if !mark <> ctx.Exec_ctx.generation then
              mark := ctx.Exec_ctx.generation
          | None -> ());
          Some row

and compile_scan ctx table cols : factory =
  if table = "$dual" then (fun () ->
    let done_ = ref false in
    fun () ->
      if !done_ then None
      else begin
        done_ := true;
        Some [||]
      end)
  else
    fun () ->
      let t =
        match Catalog.find_opt ctx.Exec_ctx.catalog table with
        | Some t -> t
        | None -> raise (Exec_error (Printf.sprintf "unknown table %s" table))
      in
      let hide =
        match ctx.Exec_ctx.hide with
        | Some (ht, col, v)
          when String.lowercase_ascii ht = String.lowercase_ascii table ->
          Some (col, v)
        | _ -> None
      in
      let c = Table.cursor ?hide t in
      fun () ->
        match c () with
        | None -> None
        | Some row ->
          Exec_ctx.note_scanned ctx;
          Some
            (match cols with
            | None -> row
            | Some idxs -> Tuple.project row idxs)

(* A right side usable for index nested loops: a chain of Filter/Audit
   operators over a bare Scan. Returns the scan info and the chain bottom-up;
   each chain op carries its plan node so metrics can be attributed to it. *)
and probe_chain (plan : Logical.t) :
    (string * int array option * Logical.t
    * ([ `Filter of Scalar.t | `Audit of string * int ] * Logical.t) list)
    option =
  match plan with
  | Logical.Scan { table; cols; _ } -> Some (table, cols, plan, [])
  | Logical.Filter { pred; child } ->
    Option.map
      (fun (t, c, scan, ops) -> (t, c, scan, ops @ [ (`Filter pred, plan) ]))
      (probe_chain child)
  | Logical.Audit { audit_name; id_col; child } ->
    Option.map
      (fun (t, c, scan, ops) ->
        (t, c, scan, ops @ [ (`Audit (audit_name, id_col), plan) ]))
      (probe_chain child)
  | _ -> None

and compile_join ctx ~node kind pred left right : factory =
  let la = Logical.arity left in
  let ra = Logical.arity right in
  let lf = compile ctx left in
  let rf = compile ctx right in
  let keys, residual = split_equi ~left_arity:la pred in
  let residual = if residual = [] then None else Some (Scalar.conjoin residual) in
  let null_pad = Array.make ra Value.Null in
  let lkeys = Array.of_list (List.map fst keys) in
  let rkeys = Array.of_list (List.map snd keys) in
  let use_hash = Array.length lkeys > 0 in
  (* Index nested loops: single equi key, right side a Filter chain over a
     scan, join column indexed (PK or secondary), and the left side
     estimated well below the right table — then per-left-row lookups beat
     building a hash of the whole right side.

     Exception: if the probe chain carries an audit operator, stay with the
     scan-based plan. An audit operator inside an index lookup would observe
     only the fetched rows, making audit cardinalities depend on the
     physical plan — §III explicitly requires false positives to be
     independent of the physical operators chosen. *)
  let inl =
    match keys with
    | [ (lk, Scalar.Col j) ] -> (
      match probe_chain right with
      | Some (_, _, _, ops)
        when List.exists
               (fun (op, _) ->
                 match op with `Audit _ -> true | `Filter _ -> false)
               ops
        ->
        None
      | Some (table, cols, scan_node, ops) -> (
        let base_col =
          match cols with None -> j | Some idxs -> idxs.(j)
        in
        match Catalog.find_opt ctx.Exec_ctx.catalog table with
        | Some t
          when (t |> Table.key) = Some base_col
               || List.mem base_col (Table.indexed_columns t) ->
          let left_est =
            Plan.Cardinality.estimate ctx.Exec_ctx.catalog left
          in
          if left_est *. 4.0 < float_of_int (Table.cardinality t) then
            Some (lk, base_col, table, cols, scan_node, ops)
          else None
        | _ -> None)
      | None -> None)
    | _ -> None
  in
  let join_phys p =
    let dir = match kind with Logical.J_inner -> "" | Logical.J_left -> "Left" in
    Metrics.set_phys ctx.Exec_ctx.metrics node (dir ^ p)
  in
  match inl with
  | Some (lk, base_col, table, cols, scan_node, ops) ->
    join_phys "IndexNLJoin";
    compile_inl_join ctx kind ~left:lf ~left_key:lk ~base_col ~table ~cols
      ~scan_node ~ops ~residual ~null_pad
  | None ->
  join_phys (if use_hash then "HashJoin" else "NLJoin");
  fun () ->
    (* Materialize and (for equi joins) hash the build side. *)
    let rc = rf () in
    let right_rows = drain_tracked ctx rc in
    let probe : Tuple.t -> Tuple.t list =
      if use_hash then begin
        let tbl = Tuple.Hashtbl_t.create 1024 in
        List.iter
          (fun row ->
            let k = Array.map (Eval.eval ctx row) rkeys in
            if not (Array.exists Value.is_null k) then
              Tuple.Hashtbl_t.replace tbl k
                (row :: (try Tuple.Hashtbl_t.find tbl k with Not_found -> [])))
          right_rows;
        fun lrow ->
          let k = Array.map (Eval.eval ctx lrow) lkeys in
          if Array.exists Value.is_null k then []
          else
            match Tuple.Hashtbl_t.find_opt tbl k with
            | Some rows -> List.rev rows
            | None -> []
      end
      else fun _ -> right_rows
    in
    let lc = lf () in
    let current_left = ref None in
    let matches = ref [] in
    let rec next () =
      match !matches with
      | m :: rest ->
        matches := rest;
        Some m
      | [] -> (
        match lc () with
        | None -> None
        | Some lrow ->
          current_left := Some lrow;
          let cands = probe lrow in
          let joined =
            List.filter_map
              (fun rrow ->
                let combined = Tuple.append lrow rrow in
                match residual with
                | None -> Some combined
                | Some p ->
                  if Eval.truthy ctx combined p then Some combined else None)
              cands
          in
          (match (joined, kind) with
          | [], Logical.J_left -> matches := [ Tuple.append lrow null_pad ]
          | _, _ -> matches := joined);
          next ())
    in
    ignore current_left;
    next

(* Index-nested-loop join: per left row, an index lookup on the right base
   table, each fetched row pushed through the right side's Filter/Audit
   chain — so a leaf audit operator on the probe side observes exactly the
   fetched rows. *)
and compile_inl_join ctx kind ~left ~left_key ~base_col ~table ~cols
    ~scan_node ~ops ~residual ~null_pad : factory =
  (* Chain nodes were registered when the right subtree was compiled for the
     (unused) scan-based fallback; re-attribute their row/probe activity even
     though the cursors are folded into the lookup. Time stays on the join. *)
  let stats_of n =
    if Metrics.enabled ctx.Exec_ctx.metrics then
      Some (Metrics.register ctx.Exec_ctx.metrics n)
    else None
  in
  let scan_st = stats_of scan_node in
  fun () ->
  let t =
    match Catalog.find_opt ctx.Exec_ctx.catalog table with
    | Some t -> t
    | None -> raise (Exec_error (Printf.sprintf "unknown table %s" table))
  in
  let hide =
    match ctx.Exec_ctx.hide with
    | Some (ht, col, v)
      when String.lowercase_ascii ht = String.lowercase_ascii table ->
      Some (col, v)
    | _ -> None
  in
  (* Compile the chain ops into closures (audit mark tables resolved now). *)
  let compiled_ops =
    List.map
      (fun (op, op_node) ->
        let st = stats_of op_node in
        let count_row row =
          (match st with
          | Some s -> s.Metrics.rows <- s.Metrics.rows + 1
          | None -> ());
          Some row
        in
        match op with
        | `Filter pred ->
          fun row -> if Eval.truthy ctx row pred then count_row row else None
        | `Audit (audit_name, id_col) -> (
          let name = String.lowercase_ascii audit_name in
          match Exec_ctx.audit_ids ctx ~audit_name:name with
          | None ->
            raise
              (Exec_error
                 (Printf.sprintf
                    "audit operator for %s: sensitive-ID set not installed"
                    audit_name))
          | Some sensitive ->
            fun row ->
              ctx.Exec_ctx.audit_probes <- ctx.Exec_ctx.audit_probes + 1;
              (match st with
              | Some s -> s.Metrics.probes <- s.Metrics.probes + 1
              | None -> ());
              (match Value.Hashtbl_v.find_opt sensitive row.(id_col) with
              | Some mark ->
                ctx.Exec_ctx.audit_hits <- ctx.Exec_ctx.audit_hits + 1;
                (match st with
                | Some s -> s.Metrics.hits <- s.Metrics.hits + 1
                | None -> ());
                if !mark <> ctx.Exec_ctx.generation then
                  mark := ctx.Exec_ctx.generation
              | None -> ());
              count_row row))
      ops
  in
  let through_chain base_row =
    Exec_ctx.note_scanned ctx;
    (match scan_st with
    | Some s -> s.Metrics.rows <- s.Metrics.rows + 1
    | None -> ());
    let projected =
      match cols with None -> base_row | Some idxs -> Tuple.project base_row idxs
    in
    List.fold_left
      (fun acc op -> match acc with Some r -> op r | None -> None)
      (Some projected) compiled_ops
  in
  let lc = left () in
  let matches = ref [] in
  let rec next () =
    match !matches with
    | m :: rest ->
      matches := rest;
      Some m
    | [] -> (
      match lc () with
      | None -> None
      | Some lrow ->
        let v = Eval.eval ctx lrow left_key in
        let fetched =
          if Value.is_null v then []
          else
            match Table.lookup ?hide t ~col:base_col v with
            | Some rows -> rows
            | None -> []
        in
        let joined =
          List.filter_map
            (fun base_row ->
              match through_chain base_row with
              | None -> None
              | Some rrow -> (
                let combined = Tuple.append lrow rrow in
                match residual with
                | None -> Some combined
                | Some p ->
                  if Eval.truthy ctx combined p then Some combined else None))
            fetched
        in
        (match (joined, kind) with
        | [], Logical.J_left -> matches := [ Tuple.append lrow null_pad ]
        | _, _ -> matches := joined);
        next ())
  in
  next

and compile_apply ctx kind outer inner : factory =
  let of_ = compile ctx outer in
  let inf = compile ctx inner in
  fun () ->
    let oc = of_ () in
    let with_params row f =
      ctx.Exec_ctx.params <- row :: ctx.Exec_ctx.params;
      Fun.protect
        ~finally:(fun () ->
          ctx.Exec_ctx.params <- List.tl ctx.Exec_ctx.params)
        f
    in
    let rec next () =
      match oc () with
      | None -> None
      | Some row -> (
        match kind with
        | Logical.A_semi | Logical.A_anti ->
          let has_row = with_params row (fun () -> inf () () <> None) in
          let keep = if kind = Logical.A_semi then has_row else not has_row in
          if keep then Some row else next ()
        | Logical.A_scalar ->
          let v =
            with_params row (fun () ->
                match inf () () with
                | Some r when Array.length r > 0 -> r.(0)
                | _ -> Value.Null)
          in
          Some (Tuple.append row [| v |]))
    in
    next

and compile_group ctx keys aggs child : factory =
  let cf = compile ctx child in
  let key_exprs = Array.of_list (List.map fst keys) in
  let agg_list = Array.of_list aggs in
  fun () ->
    let c = cf () in
    let groups : Aggregate.state array Tuple.Hashtbl_t.t =
      Tuple.Hashtbl_t.create 256
    in
    let order = ref [] in
    let rec consume () =
      match c () with
      | None -> ()
      | Some row ->
        let k = Array.map (Eval.eval ctx row) key_exprs in
        let states =
          match Tuple.Hashtbl_t.find_opt groups k with
          | Some s -> s
          | None ->
            Exec_ctx.note_materialized ctx;
            let s = Array.map Aggregate.create agg_list in
            Tuple.Hashtbl_t.replace groups k s;
            order := k :: !order;
            s
        in
        Array.iteri
          (fun i st ->
            let v =
              match agg_list.(i).Logical.arg with
              | None -> None
              | Some e -> Some (Eval.eval ctx row e)
            in
            Aggregate.update st v)
          states;
        consume ()
    in
    consume ();
    let emit k =
      let states = Tuple.Hashtbl_t.find groups k in
      Tuple.append k (Array.map Aggregate.final states)
    in
    let pending =
      if Array.length key_exprs = 0 && Tuple.Hashtbl_t.length groups = 0 then begin
        (* Scalar aggregate over empty input: one default row. *)
        let states = Array.map Aggregate.create agg_list in
        [ Array.map Aggregate.final states ]
      end
      else List.rev_map emit !order
    in
    let remaining = ref pending in
    fun () ->
      match !remaining with
      | [] -> None
      | r :: rest ->
        remaining := rest;
        Some r

and compile_sort ctx keys child : factory =
  let cf = compile ctx child in
  let key_exprs = Array.of_list keys in
  fun () ->
    let rows = drain_tracked ctx (cf ()) in
    let decorated =
      List.map
        (fun row ->
          (Array.map (fun (e, _) -> Eval.eval ctx row e) key_exprs, row))
        rows
    in
    let cmp (ka, _) (kb, _) =
      let rec go i =
        if i = Array.length key_exprs then 0
        else
          let _, dir = key_exprs.(i) in
          let c = Value.compare_total ka.(i) kb.(i) in
          let c = match dir with Sql.Ast.Asc -> c | Sql.Ast.Desc -> -c in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    in
    let sorted = List.stable_sort cmp decorated in
    let remaining = ref sorted in
    fun () ->
      match !remaining with
      | [] -> None
      | (_, r) :: rest ->
        remaining := rest;
        Some r

(* ------------------------------------------------------------------ *)
(* Convenience entry points                                            *)
(* ------------------------------------------------------------------ *)

(** Compile and run, materializing all result rows. *)
let run_list ctx plan : Tuple.t list = drain (compile ctx plan ())

(** Compile and run, consuming rows without materializing (benchmarks). *)
let run_count ctx plan : int =
  let c = compile ctx plan () in
  let rec go n = match c () with None -> n | Some _ -> go (n + 1) in
  go 0
