(** Volcano-style execution of physical plans.

    The executor consumes {!Plan.Physical.t} only: every strategy decision
    — hash- vs nested-loop join selection, equi-key extraction, the
    index-nested-loop refinement, TopK fusion — was already made by
    {!Plan.Physical.plan_of_logical}. [compile ctx plan] turns the
    physical tree into a cursor *factory*; invoking the factory opens a
    fresh execution. Correlated [Apply] operators invoke their inner
    factory once per outer row, with the outer row pushed on the context's
    parameter stack. Scalar expressions are compiled once per plan by
    {!Expr_compile}; the {!Eval} interpreter remains the semantic oracle
    behind [ctx.interpret_exprs].

    The physical audit operator (§IV-A2) is a no-op hash probe: it looks up
    the ID column of every passing row in the audit expression's materialized
    sensitive-ID set and records hits in the per-query ACCESSED state. It
    never filters — instrumented plans return exactly the rows of the plain
    plan. *)

open Storage
open Plan

exception Exec_error of string

type cursor = unit -> Tuple.t option
type factory = unit -> cursor

let drain (c : cursor) : Tuple.t list =
  let rec go acc = match c () with None -> List.rev acc | Some r -> go (r :: acc) in
  go []

(* Drain into a buffer a blocking operator will hold live, charging each
   tuple against the context's memory budget. *)
let drain_tracked ctx (c : cursor) : Tuple.t list =
  let rec go acc =
    match c () with
    | None -> List.rev acc
    | Some r ->
      Exec_ctx.note_materialized ctx;
      go (r :: acc)
  in
  go []

(* When metrics collection is enabled, every compiled operator is wrapped so
   each getNext call is counted and timed against the node's [op_stats].
   Registration happens before children compile, so reports come out in plan
   pre-order; the record is found again later by physical node identity
   (EXPLAIN ANALYZE walks the same tree). *)
let rec compile (ctx : Exec_ctx.t) (plan : Physical.t) : factory =
  let base =
    if not (Metrics.enabled ctx.Exec_ctx.metrics) then compile_op ctx plan
    else begin
      let st = Metrics.register ctx.Exec_ctx.metrics plan in
      let f = compile_op ctx plan in
      fun () ->
        st.Metrics.opens <- st.Metrics.opens + 1;
        let c = f () in
        fun () ->
          let t0 = Metrics.now_s () in
          let r = c () in
          st.Metrics.time_s <- st.Metrics.time_s +. (Metrics.now_s () -. t0);
          st.Metrics.calls <- st.Metrics.calls + 1;
          (match r with
          | Some _ -> st.Metrics.rows <- st.Metrics.rows + 1
          | None -> ());
          r
    end
  in
  (* Guard/fault wrapper, compiled in only when a guard or a fault plan is
     armed — the plain hot path carries no per-row cost. *)
  let faults_armed = Engine_core.Faultkit.armed ctx.Exec_ctx.faults in
  if not (Exec_ctx.guards_armed ctx || faults_armed) then base
  else begin
    let label = Physical.label plan in
    fun () ->
      Exec_ctx.check_deadline ctx;
      let c = base () in
      fun () ->
        if faults_armed then
          Engine_core.Faultkit.on_get_next ctx.Exec_ctx.faults ~op:label;
        Exec_ctx.check_guards ctx;
        c ()
  end

and compile_op (ctx : Exec_ctx.t) (plan : Physical.t) : factory =
  match plan.Physical.op with
  | Physical.Seq_scan { table; cols; _ } -> compile_scan ctx table cols
  | Physical.Filter { pred; child } ->
    let cf = compile ctx child in
    let test = Expr_compile.compile_pred ctx pred in
    fun () ->
      let c = cf () in
      let rec next () =
        match c () with
        | None -> None
        | Some row -> if test row then Some row else next ()
      in
      next
  | Physical.Project { cols; child } ->
    let cf = compile ctx child in
    let exprs =
      Array.of_list (List.map (fun (e, _) -> Expr_compile.compile ctx e) cols)
    in
    fun () ->
      let c = cf () in
      fun () ->
        (match c () with
        | None -> None
        | Some row -> Some (Array.map (fun f -> f row) exprs))
  | Physical.Hash_join { kind; lkeys; rkeys; residual; left; right; right_arity }
    ->
    compile_hash_join ctx kind ~lkeys ~rkeys ~residual ~left ~right
      ~right_arity
  | Physical.Nl_join { kind; pred; left; right; right_arity } ->
    compile_nl_join ctx kind ~pred ~left ~right ~right_arity
  | Physical.Index_nl_join
      { kind; left; left_key; table; base_col; cols; chain; residual;
        right_arity } ->
    compile_inl_join ctx kind ~left ~left_key ~table ~base_col ~cols ~chain
      ~residual ~right_arity
  | Physical.Hash_semi_join { anti; left; left_key; right; right_key } ->
    let lf = compile ctx left in
    let rf = compile ctx right in
    let lkey = Expr_compile.compile ctx left_key in
    let rkey = Expr_compile.compile ctx right_key in
    fun () ->
      let keys = Value.Hashtbl_v.create 256 in
      let rc = rf () in
      let rec build () =
        match rc () with
        | None -> ()
        | Some row ->
          let k = rkey row in
          if not (Value.is_null k) then begin
            Exec_ctx.note_materialized ctx;
            Value.Hashtbl_v.replace keys k ()
          end;
          build ()
      in
      build ();
      let lc = lf () in
      let rec next () =
        match lc () with
        | None -> None
        | Some row ->
          let k = lkey row in
          let matched =
            (not (Value.is_null k)) && Value.Hashtbl_v.mem keys k
          in
          if matched <> anti then Some row else next ()
      in
      next
  | Physical.Apply { kind; outer; inner } -> compile_apply ctx kind outer inner
  | Physical.Hash_agg { keys; aggs; child } ->
    compile_group ctx keys aggs child
  | Physical.Sort { keys; child } ->
    let cf = compile ctx child in
    let sort_rows = compile_sorter ctx keys in
    fun () ->
      let sorted = sort_rows (drain_tracked ctx (cf ())) in
      let remaining = ref sorted in
      fun () ->
        (match !remaining with
        | [] -> None
        | r :: rest ->
          remaining := rest;
          Some r)
  | Physical.Top_k { n; keys; child } ->
    (* Fused Limit-over-Sort: full sort, bounded emission. *)
    let cf = compile ctx child in
    let sort_rows = compile_sorter ctx keys in
    fun () ->
      let sorted = sort_rows (drain_tracked ctx (cf ())) in
      let remaining = ref sorted in
      let left = ref n in
      fun () ->
        if !left <= 0 then None
        else begin
          match !remaining with
          | [] -> None
          | r :: rest ->
            remaining := rest;
            decr left;
            Some r
        end
  | Physical.Limit { n; child } ->
    let cf = compile ctx child in
    fun () ->
      let c = cf () in
      let remaining = ref n in
      fun () ->
        if !remaining <= 0 then None
        else begin
          match c () with
          | None -> None
          | Some row ->
            decr remaining;
            Some row
        end
  | Physical.Distinct child ->
    let cf = compile ctx child in
    fun () ->
      let c = cf () in
      let seen = Tuple.Hashtbl_t.create 256 in
      let rec next () =
        match c () with
        | None -> None
        | Some row ->
          if Tuple.Hashtbl_t.mem seen row then next ()
          else begin
            Tuple.Hashtbl_t.replace seen row ();
            Some row
          end
      in
      next
  | Physical.Set_op { op; left; right } -> (
    let lf = compile ctx left in
    let rf = compile ctx right in
    match op with
    | Sql.Ast.Union_all ->
      fun () ->
        let lc = lf () in
        let rc = rf () in
        let on_left = ref true in
        let rec next () =
          if !on_left then
            match lc () with
            | Some r -> Some r
            | None ->
              on_left := false;
              next ()
          else rc ()
        in
        next
    | Sql.Ast.Union ->
      fun () ->
        let seen = Tuple.Hashtbl_t.create 256 in
        let lc = lf () in
        let rc = rf () in
        let on_left = ref true in
        let rec next () =
          let candidate =
            if !on_left then
              match lc () with
              | Some r -> Some r
              | None ->
                on_left := false;
                rc ()
            else rc ()
          in
          match candidate with
          | None -> None
          | Some row ->
            if Tuple.Hashtbl_t.mem seen row then next ()
            else begin
              Tuple.Hashtbl_t.replace seen row ();
              Some row
            end
        in
        next
    | Sql.Ast.Except | Sql.Ast.Intersect ->
      let keep_if_in_right = op = Sql.Ast.Intersect in
      fun () ->
        let right_set = Tuple.Hashtbl_t.create 256 in
        let rc = rf () in
        let rec build () =
          match rc () with
          | None -> ()
          | Some r ->
            Exec_ctx.note_materialized ctx;
            Tuple.Hashtbl_t.replace right_set r ();
            build ()
        in
        build ();
        let emitted = Tuple.Hashtbl_t.create 256 in
        let lc = lf () in
        let rec next () =
          match lc () with
          | None -> None
          | Some row ->
            if
              Tuple.Hashtbl_t.mem right_set row = keep_if_in_right
              && not (Tuple.Hashtbl_t.mem emitted row)
            then begin
              Tuple.Hashtbl_t.replace emitted row ();
              Some row
            end
            else next ()
        in
        next)
  | Physical.Audit_probe { audit_name; id_col; child } ->
    let cf = compile ctx child in
    let name = String.lowercase_ascii audit_name in
    let st = Metrics.find ctx.Exec_ctx.metrics plan in
    fun () ->
      let sensitive =
        match Exec_ctx.audit_ids ctx ~audit_name:name with
        | Some s -> s
        | None ->
          raise
            (Exec_error
               (Printf.sprintf
                  "audit operator for %s: sensitive-ID set not installed"
                  audit_name))
      in
      let c = cf () in
      fun () ->
        match c () with
        | None -> None
        | Some row ->
          ctx.Exec_ctx.audit_probes <- ctx.Exec_ctx.audit_probes + 1;
          (match st with
          | Some s -> s.Metrics.probes <- s.Metrics.probes + 1
          | None -> ());
          (* One hash probe per row; a hit marks the ID as accessed by
             storing the query generation into the probe table entry. *)
          (match Value.Hashtbl_v.find_opt sensitive row.(id_col) with
          | Some mark ->
            ctx.Exec_ctx.audit_hits <- ctx.Exec_ctx.audit_hits + 1;
            (match st with
            | Some s -> s.Metrics.hits <- s.Metrics.hits + 1
            | None -> ());
            if !mark <> ctx.Exec_ctx.generation then
              mark := ctx.Exec_ctx.generation
          | None -> ());
          Some row

and compile_scan ctx table cols : factory =
  if table = "$dual" then (fun () ->
    let done_ = ref false in
    fun () ->
      if !done_ then None
      else begin
        done_ := true;
        Some [||]
      end)
  else
    fun () ->
      let t =
        match Catalog.find_opt ctx.Exec_ctx.catalog table with
        | Some t -> t
        | None -> raise (Exec_error (Printf.sprintf "unknown table %s" table))
      in
      let hide =
        match ctx.Exec_ctx.hide with
        | Some (ht, col, v)
          when String.lowercase_ascii ht = String.lowercase_ascii table ->
          Some (col, v)
        | _ -> None
      in
      let c = Table.cursor ?hide t in
      fun () ->
        match c () with
        | None -> None
        | Some row ->
          Exec_ctx.note_scanned ctx;
          Some
            (match cols with
            | None -> row
            | Some idxs -> Tuple.project row idxs)

and compile_hash_join ctx kind ~lkeys ~rkeys ~residual ~left ~right
    ~right_arity : factory =
  let lf = compile ctx left in
  let rf = compile ctx right in
  let lkeys = Array.map (Expr_compile.compile ctx) lkeys in
  let rkeys = Array.map (Expr_compile.compile ctx) rkeys in
  let residual = Option.map (Expr_compile.compile_pred ctx) residual in
  let null_pad = Array.make right_arity Value.Null in
  fun () ->
    (* Materialize and hash the build side. *)
    let rc = rf () in
    let tbl = Tuple.Hashtbl_t.create 1024 in
    let rec build () =
      match rc () with
      | None -> ()
      | Some row ->
        Exec_ctx.note_materialized ctx;
        let k = Array.map (fun f -> f row) rkeys in
        if not (Array.exists Value.is_null k) then
          Tuple.Hashtbl_t.replace tbl k
            (row :: (try Tuple.Hashtbl_t.find tbl k with Not_found -> []));
        build ()
    in
    build ();
    let probe lrow =
      let k = Array.map (fun f -> f lrow) lkeys in
      if Array.exists Value.is_null k then []
      else
        match Tuple.Hashtbl_t.find_opt tbl k with
        | Some rows -> List.rev rows
        | None -> []
    in
    let lc = lf () in
    join_emit ~kind ~null_pad ~residual ~probe lc

and compile_nl_join ctx kind ~pred ~left ~right ~right_arity : factory =
  let lf = compile ctx left in
  let rf = compile ctx right in
  let pred = Option.map (Expr_compile.compile_pred ctx) pred in
  let null_pad = Array.make right_arity Value.Null in
  fun () ->
    let right_rows = drain_tracked ctx (rf ()) in
    let probe _ = right_rows in
    let lc = lf () in
    join_emit ~kind ~null_pad ~residual:pred ~probe lc

(* Shared probe-side emission for hash and nested-loop joins: per left row,
   join candidate right rows, apply the residual, null-pad for LEFT JOIN. *)
and join_emit ~kind ~null_pad ~residual ~probe lc : cursor =
  let matches = ref [] in
  let rec next () =
    match !matches with
    | m :: rest ->
      matches := rest;
      Some m
    | [] -> (
      match lc () with
      | None -> None
      | Some lrow ->
        let cands = probe lrow in
        let joined =
          List.filter_map
            (fun rrow ->
              let combined = Tuple.append lrow rrow in
              match residual with
              | None -> Some combined
              | Some test -> if test combined then Some combined else None)
            cands
        in
        (match (joined, kind) with
        | [], Logical.J_left -> matches := [ Tuple.append lrow null_pad ]
        | _, _ -> matches := joined);
        next ())
  in
  next

(* Index-nested-loop join: per left row, an index lookup on the right base
   table, each fetched row pushed through the right side's physical
   Filter/AuditProbe chain — metrics stay attributable per chain node even
   though the chain's cursors are folded into the lookup (row and probe
   counts land on the chain nodes; time stays on the join). *)
and compile_inl_join ctx kind ~left ~left_key ~table ~base_col ~cols ~chain
    ~residual ~right_arity : factory =
  let lf = compile ctx left in
  let lkey = Expr_compile.compile ctx left_key in
  let residual = Option.map (Expr_compile.compile_pred ctx) residual in
  let null_pad = Array.make right_arity Value.Null in
  let stats_of n =
    if Metrics.enabled ctx.Exec_ctx.metrics then
      Some (Metrics.register ctx.Exec_ctx.metrics n)
    else None
  in
  (* Decompose the physical chain: scan node at the bottom, then the ops
     above it in application (bottom-up) order. *)
  let scan_node, ops =
    let rec go node acc =
      match node.Physical.op with
      | Physical.Seq_scan _ -> (node, acc)
      | Physical.Filter { pred; child } -> go child ((`Filter pred, node) :: acc)
      | Physical.Audit_probe { audit_name; id_col; child } ->
        go child ((`Audit (audit_name, id_col), node) :: acc)
      | _ ->
        raise (Exec_error "index-lookup probe chain is not Filter/Audit/Scan")
    in
    go chain []
  in
  let scan_st = stats_of scan_node in
  (* Compile the chain ops into closures (audit mark tables resolved at
     open). *)
  let compiled_ops =
    List.map
      (fun (op, op_node) ->
        let st = stats_of op_node in
        match op with
        | `Filter pred ->
          let test = Expr_compile.compile_pred ctx pred in
          `Static
            (fun row ->
              if test row then begin
                (match st with
                | Some s -> s.Metrics.rows <- s.Metrics.rows + 1
                | None -> ());
                Some row
              end
              else None)
        | `Audit (audit_name, id_col) -> `Audit (audit_name, id_col, st))
      ops
  in
  fun () ->
  let t =
    match Catalog.find_opt ctx.Exec_ctx.catalog table with
    | Some t -> t
    | None -> raise (Exec_error (Printf.sprintf "unknown table %s" table))
  in
  let hide =
    match ctx.Exec_ctx.hide with
    | Some (ht, col, v)
      when String.lowercase_ascii ht = String.lowercase_ascii table ->
      Some (col, v)
    | _ -> None
  in
  let opened_ops =
    List.map
      (fun cop ->
        match cop with
        | `Static f -> f
        | `Audit (audit_name, id_col, st) -> (
          let name = String.lowercase_ascii audit_name in
          match Exec_ctx.audit_ids ctx ~audit_name:name with
          | None ->
            raise
              (Exec_error
                 (Printf.sprintf
                    "audit operator for %s: sensitive-ID set not installed"
                    audit_name))
          | Some sensitive ->
            fun row ->
              ctx.Exec_ctx.audit_probes <- ctx.Exec_ctx.audit_probes + 1;
              (match st with
              | Some s -> s.Metrics.probes <- s.Metrics.probes + 1
              | None -> ());
              (match Value.Hashtbl_v.find_opt sensitive row.(id_col) with
              | Some mark ->
                ctx.Exec_ctx.audit_hits <- ctx.Exec_ctx.audit_hits + 1;
                (match st with
                | Some s -> s.Metrics.hits <- s.Metrics.hits + 1
                | None -> ());
                if !mark <> ctx.Exec_ctx.generation then
                  mark := ctx.Exec_ctx.generation
              | None -> ());
              (match st with
              | Some s -> s.Metrics.rows <- s.Metrics.rows + 1
              | None -> ());
              Some row))
      compiled_ops
  in
  let through_chain base_row =
    Exec_ctx.note_scanned ctx;
    (match scan_st with
    | Some s -> s.Metrics.rows <- s.Metrics.rows + 1
    | None -> ());
    let projected =
      match cols with None -> base_row | Some idxs -> Tuple.project base_row idxs
    in
    List.fold_left
      (fun acc op -> match acc with Some r -> op r | None -> None)
      (Some projected) opened_ops
  in
  let probe lrow =
    let v = lkey lrow in
    if Value.is_null v then []
    else
      match Table.lookup ?hide t ~col:base_col v with
      | Some rows -> List.filter_map through_chain rows
      | None -> []
  in
  let lc = lf () in
  join_emit ~kind ~null_pad ~residual ~probe lc

and compile_apply ctx kind outer inner : factory =
  let of_ = compile ctx outer in
  let inf = compile ctx inner in
  fun () ->
    let oc = of_ () in
    let with_params row f =
      ctx.Exec_ctx.params <- row :: ctx.Exec_ctx.params;
      Fun.protect
        ~finally:(fun () ->
          ctx.Exec_ctx.params <- List.tl ctx.Exec_ctx.params)
        f
    in
    let rec next () =
      match oc () with
      | None -> None
      | Some row -> (
        match kind with
        | Logical.A_semi | Logical.A_anti ->
          let has_row = with_params row (fun () -> inf () () <> None) in
          let keep = if kind = Logical.A_semi then has_row else not has_row in
          if keep then Some row else next ()
        | Logical.A_scalar ->
          let v =
            with_params row (fun () ->
                match inf () () with
                | Some r when Array.length r > 0 -> r.(0)
                | _ -> Value.Null)
          in
          Some (Tuple.append row [| v |]))
    in
    next

and compile_group ctx keys aggs child : factory =
  let cf = compile ctx child in
  let key_exprs =
    Array.of_list (List.map (fun (e, _) -> Expr_compile.compile ctx e) keys)
  in
  let agg_list = Array.of_list aggs in
  let agg_args =
    Array.map
      (fun a -> Option.map (Expr_compile.compile ctx) a.Logical.arg)
      agg_list
  in
  fun () ->
    let c = cf () in
    let groups : Aggregate.state array Tuple.Hashtbl_t.t =
      Tuple.Hashtbl_t.create 256
    in
    let order = ref [] in
    let rec consume () =
      match c () with
      | None -> ()
      | Some row ->
        let k = Array.map (fun f -> f row) key_exprs in
        let states =
          match Tuple.Hashtbl_t.find_opt groups k with
          | Some s -> s
          | None ->
            Exec_ctx.note_materialized ctx;
            let s = Array.map Aggregate.create agg_list in
            Tuple.Hashtbl_t.replace groups k s;
            order := k :: !order;
            s
        in
        Array.iteri
          (fun i st ->
            let v =
              match agg_args.(i) with None -> None | Some f -> Some (f row)
            in
            Aggregate.update st v)
          states;
        consume ()
    in
    consume ();
    let emit k =
      let states = Tuple.Hashtbl_t.find groups k in
      Tuple.append k (Array.map Aggregate.final states)
    in
    let pending =
      if Array.length key_exprs = 0 && Tuple.Hashtbl_t.length groups = 0 then begin
        (* Scalar aggregate over empty input: one default row. *)
        let states = Array.map Aggregate.create agg_list in
        [ Array.map Aggregate.final states ]
      end
      else List.rev_map emit !order
    in
    let remaining = ref pending in
    fun () ->
      match !remaining with
      | [] -> None
      | r :: rest ->
        remaining := rest;
        Some r

(* Sorter over materialized rows, shared by Sort and TopK: keys compiled
   once, rows decorated, stable sort by the key vector. *)
and compile_sorter ctx keys : Tuple.t list -> Tuple.t list =
  let key_exprs = Array.of_list keys in
  let compiled =
    Array.map (fun (e, _) -> Expr_compile.compile ctx e) key_exprs
  in
  fun rows ->
    let decorated =
      List.map (fun row -> (Array.map (fun f -> f row) compiled, row)) rows
    in
    let cmp (ka, _) (kb, _) =
      let rec go i =
        if i = Array.length key_exprs then 0
        else
          let _, dir = key_exprs.(i) in
          let c = Value.compare_total ka.(i) kb.(i) in
          let c = match dir with Sql.Ast.Asc -> c | Sql.Ast.Desc -> -c in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    in
    List.map snd (List.stable_sort cmp decorated)

(* ------------------------------------------------------------------ *)
(* Convenience entry points                                            *)
(* ------------------------------------------------------------------ *)

(** Compile and run, materializing all result rows. *)
let run_list ctx plan : Tuple.t list = drain (compile ctx plan ())

(** Compile and run, consuming rows without materializing (benchmarks). *)
let run_count ctx plan : int =
  let c = compile ctx plan () in
  let rec go n = match c () with None -> n | Some _ -> go (n + 1) in
  go 0
