(** Execution context.

    Carries everything a running plan needs besides its own operators:

    - the catalog (scans resolve tables at open time, so the transient
      [ACCESSED] relation can be registered just before a trigger action);
    - session state backing [now()], [user_id()] and [sql_text()] — the
      clock is logical (statement counter) so runs are deterministic;
    - the audit machinery: per-audit-expression sensitive-ID sets probed by
      audit operators, and the per-query [ACCESSED] internal state they
      populate (§II, §IV-A2);
    - [hide]: a (table, key) pair virtually deleted from scans, used by the
      exact offline auditor to evaluate Q(D - t) (Definition 2.3);
    - the parameter stack for correlated [Apply] operators. *)

open Storage

type t = {
  catalog : Catalog.t;
  mutable now : int;
  mutable user : string;
  mutable sql : string;
  mutable hide : (string * int * Value.t) option;
      (** (table, column index, value): scans of that table skip matching
          rows — the virtual deletion behind Definition 2.3 *)
  audit_sets : (string, int ref Value.Hashtbl_v.t) Hashtbl.t;
      (** per audit expression: sensitive ID -> generation mark. A probe is
          a single hash lookup; marking an accessed ID is an int store into
          the probe table itself, exactly the paper's "IDs that are joined
          are marked as auditIDs" (§IV-A2). *)
  mutable generation : int;
      (** current query generation; an ID is in ACCESSED iff its mark
          equals this *)
  extra_accessed : (string, unit Value.Hashtbl_v.t) Hashtbl.t;
      (** accesses that cannot live as marks because the ID left the
          sensitive view during the statement (e.g. DELETE of a sensitive
          row, which *read* it first — §II-B) *)
  mutable params : Tuple.t list;
  (* Statistics *)
  mutable audit_probes : int;  (** rows seen by audit operators *)
  mutable audit_hits : int;  (** rows matching a sensitive ID *)
  mutable rows_scanned : int;
  metrics : Metrics.t;
      (** per-operator registry; populated only when metrics collection is
          enabled (EXPLAIN ANALYZE, benchmarks) *)
}

let create catalog =
  {
    catalog;
    now = 0;
    user = "admin";
    sql = "";
    hide = None;
    audit_sets = Hashtbl.create 4;
    generation = 1;
    extra_accessed = Hashtbl.create 4;
    params = [];
    audit_probes = 0;
    audit_hits = 0;
    rows_scanned = 0;
    metrics = Metrics.create ();
  }

let norm = String.lowercase_ascii

(** Install the sensitive-ID mark table an audit operator probes. *)
let set_audit_ids ctx ~audit_name ids =
  Hashtbl.replace ctx.audit_sets (norm audit_name) ids

let audit_ids ctx ~audit_name =
  Hashtbl.find_opt ctx.audit_sets (norm audit_name)

(** Start a fresh query: bumping the generation invalidates every ACCESSED
    mark in O(1). *)
let reset_query_state ctx =
  ctx.generation <- ctx.generation + 1;
  Hashtbl.reset ctx.extra_accessed;
  ctx.params <- [];
  ctx.audit_probes <- 0;
  ctx.audit_hits <- 0;
  ctx.rows_scanned <- 0;
  Metrics.clear ctx.metrics

(** Record an access for an ID that may no longer be in the sensitive view
    (DML read-accesses, §II-B). *)
let add_extra_accessed ctx ~audit_name v =
  let key = norm audit_name in
  let tbl =
    match Hashtbl.find_opt ctx.extra_accessed key with
    | Some t -> t
    | None ->
      let t = Value.Hashtbl_v.create 8 in
      Hashtbl.replace ctx.extra_accessed key t;
      t
  in
  if not (Value.Hashtbl_v.mem tbl v) then Value.Hashtbl_v.add tbl v ()

(** Sorted list of accessed IDs for an audit expression (current query). *)
let accessed_list ctx ~audit_name =
  let marked =
    match Hashtbl.find_opt ctx.audit_sets (norm audit_name) with
    | None -> []
    | Some marks ->
      Value.Hashtbl_v.fold
        (fun v r acc -> if !r = ctx.generation then v :: acc else acc)
        marks []
  in
  let extra =
    match Hashtbl.find_opt ctx.extra_accessed (norm audit_name) with
    | None -> []
    | Some tbl ->
      Value.Hashtbl_v.fold
        (fun v () acc ->
          if List.exists (Value.equal v) marked then acc else v :: acc)
        tbl []
  in
  List.sort Value.compare_total (extra @ marked)

let accessed_count ctx ~audit_name =
  List.length (accessed_list ctx ~audit_name)
