(** Execution context.

    Carries everything a running plan needs besides its own operators:

    - the catalog (scans resolve tables at open time, so the transient
      [ACCESSED] relation can be registered just before a trigger action);
    - session state backing [now()], [user_id()] and [sql_text()] — the
      clock is logical (statement counter) so runs are deterministic;
    - the audit machinery: per-audit-expression sensitive-ID sets probed by
      audit operators, and the per-query [ACCESSED] internal state they
      populate (§II, §IV-A2);
    - [hide]: a (table, key) pair virtually deleted from scans, used by the
      exact offline auditor to evaluate Q(D - t) (Definition 2.3);
    - the parameter stack for correlated [Apply] operators. *)

open Storage

type t = {
  catalog : Catalog.t;
  mutable session_id : int;
      (** identity of the owning session in served (multi-client) mode;
          0 for the single-session engine. Stamped onto every WAL evidence
          record so concurrent sessions' audit trails stay attributable. *)
  mutable now : int;
  mutable user : string;
  mutable sql : string;
  mutable hide : (string * int * Value.t) option;
      (** (table, column index, value): scans of that table skip matching
          rows — the virtual deletion behind Definition 2.3 *)
  audit_sets : (string, int ref Value.Hashtbl_v.t) Hashtbl.t;
      (** per audit expression: sensitive ID -> generation mark. A probe is
          a single hash lookup; marking an accessed ID is an int store into
          the probe table itself, exactly the paper's "IDs that are joined
          are marked as auditIDs" (§IV-A2). *)
  mutable generation : int;
      (** current query generation; an ID is in ACCESSED iff its mark
          equals this *)
  extra_accessed : (string, unit Value.Hashtbl_v.t) Hashtbl.t;
      (** accesses that cannot live as marks because the ID left the
          sensitive view during the statement (e.g. DELETE of a sensitive
          row, which *read* it first — §II-B) *)
  mutable params : Tuple.t list;
  mutable interpret_exprs : bool;
      (** evaluate scalars with the {!Eval} reference interpreter instead
          of {!Expr_compile} closures — the oracle mode used by parity
          tests and the before/after benchmark *)
  (* Statistics *)
  mutable audit_probes : int;  (** rows seen by audit operators *)
  mutable audit_hits : int;  (** rows matching a sensitive ID *)
  mutable rows_scanned : int;
  metrics : Metrics.t;
      (** per-operator registry; populated only when metrics collection is
          enabled (EXPLAIN ANALYZE, benchmarks) *)
  (* Query guards: cooperative cancellation. A tripped guard raises the
     typed [Engine_error.Cancelled]; the database layer still flushes the
     partial ACCESSED set, extending no-false-negatives to aborted
     queries. *)
  mutable timeout_s : float option;  (** per-query wall-clock budget *)
  mutable deadline : float option;
      (** monotonic deadline of the current query (armed by
          [reset_query_state] from [timeout_s]) *)
  mutable row_budget : int option;  (** max base-table rows scanned *)
  mutable mem_budget : int option;  (** max tuples materialized by blocking
                                        operators (hash builds, sorts,
                                        groups) *)
  mutable tuples_materialized : int;
  mutable guard_ticks : int;  (** getNext counter for periodic clock checks *)
  faults : Engine_core.Faultkit.t;
      (** fault-injection plan consulted by the executor, trigger runner
          and audit log *)
}

let create ?(session_id = 0) catalog =
  {
    catalog;
    session_id;
    now = 0;
    user = "admin";
    sql = "";
    hide = None;
    audit_sets = Hashtbl.create 4;
    generation = 1;
    extra_accessed = Hashtbl.create 4;
    params = [];
    interpret_exprs = false;
    audit_probes = 0;
    audit_hits = 0;
    rows_scanned = 0;
    metrics = Metrics.create ();
    timeout_s = None;
    deadline = None;
    row_budget = None;
    mem_budget = None;
    tuples_materialized = 0;
    guard_ticks = 0;
    faults = Engine_core.Faultkit.create ();
  }

let norm = String.lowercase_ascii

(** Install the sensitive-ID mark table an audit operator probes. *)
let set_audit_ids ctx ~audit_name ids =
  Hashtbl.replace ctx.audit_sets (norm audit_name) ids

let audit_ids ctx ~audit_name =
  Hashtbl.find_opt ctx.audit_sets (norm audit_name)

(** Start a fresh query: bumping the generation invalidates every ACCESSED
    mark in O(1). *)
let reset_query_state ctx =
  ctx.generation <- ctx.generation + 1;
  Hashtbl.reset ctx.extra_accessed;
  ctx.params <- [];
  ctx.audit_probes <- 0;
  ctx.audit_hits <- 0;
  ctx.rows_scanned <- 0;
  ctx.tuples_materialized <- 0;
  ctx.guard_ticks <- 0;
  ctx.deadline <-
    Option.map (fun s -> Engine_core.Mono_clock.now () +. s) ctx.timeout_s;
  Metrics.clear ctx.metrics

(** Record an access for an ID that may no longer be in the sensitive view
    (DML read-accesses, §II-B). *)
let add_extra_accessed ctx ~audit_name v =
  let key = norm audit_name in
  let tbl =
    match Hashtbl.find_opt ctx.extra_accessed key with
    | Some t -> t
    | None ->
      let t = Value.Hashtbl_v.create 8 in
      Hashtbl.replace ctx.extra_accessed key t;
      t
  in
  if not (Value.Hashtbl_v.mem tbl v) then Value.Hashtbl_v.add tbl v ()

(** Sorted list of accessed IDs for an audit expression (current query). *)
let accessed_list ctx ~audit_name =
  let marked =
    match Hashtbl.find_opt ctx.audit_sets (norm audit_name) with
    | None -> []
    | Some marks ->
      Value.Hashtbl_v.fold
        (fun v r acc -> if !r = ctx.generation then v :: acc else acc)
        marks []
  in
  let extra =
    match Hashtbl.find_opt ctx.extra_accessed (norm audit_name) with
    | None -> []
    | Some tbl ->
      Value.Hashtbl_v.fold
        (fun v () acc ->
          if List.exists (Value.equal v) marked then acc else v :: acc)
        tbl []
  in
  List.sort Value.compare_total (extra @ marked)

let accessed_count ctx ~audit_name =
  List.length (accessed_list ctx ~audit_name)

(* ------------------------------------------------------------------ *)
(* Query guards                                                        *)
(* ------------------------------------------------------------------ *)

let cancel reason detail =
  Engine_core.Engine_error.raise_
    (Engine_core.Engine_error.Cancelled { reason; detail })

(** Any guard armed for the current query? Checked once per compile so the
    unguarded hot path carries no per-row cost. *)
let guards_armed ctx =
  ctx.deadline <> None || ctx.row_budget <> None || ctx.mem_budget <> None

let check_deadline ctx =
  match ctx.deadline with
  | Some d when Engine_core.Mono_clock.now () > d ->
    cancel Engine_core.Engine_error.Timeout
      (Printf.sprintf "query exceeded its %gs wall-clock budget"
         (Option.value ctx.timeout_s ~default:0.0))
  | _ -> ()

(** Cheap periodic guard check, called per [getNext] when guards are
    armed: the clock is read only every 16th call. *)
let check_guards ctx =
  ctx.guard_ticks <- ctx.guard_ticks + 1;
  if ctx.guard_ticks land 15 = 0 then check_deadline ctx

(** Count a base-table row against the scan budget. *)
let note_scanned ctx =
  ctx.rows_scanned <- ctx.rows_scanned + 1;
  match ctx.row_budget with
  | Some b when ctx.rows_scanned > b ->
    cancel Engine_core.Engine_error.Row_budget
      (Printf.sprintf "query scanned more than %d rows" b)
  | _ -> ()

(** Count [n] base-table rows at once — the vectorized scan's O(1) charge
    per chunk. Equivalent to [n] [note_scanned] calls, except that with a
    row budget armed the cancellation would land at the chunk boundary
    rather than the exact row; callers must charge per row in that case. *)
let note_scanned_many ctx n = ctx.rows_scanned <- ctx.rows_scanned + n

(** Count a tuple materialized by a blocking operator (hash build, sort
    buffer, group table) against the memory budget. *)
let note_materialized ctx =
  match ctx.mem_budget with
  | None -> ()
  | Some b ->
    ctx.tuples_materialized <- ctx.tuples_materialized + 1;
    if ctx.tuples_materialized > b then
      cancel Engine_core.Engine_error.Memory_budget
        (Printf.sprintf "query materialized more than %d tuples" b)
