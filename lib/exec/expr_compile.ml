(** Scalar expression compilation.

    [compile ctx e] walks the {!Plan.Scalar.t} tree {e once} and returns a
    [Tuple.t -> Value.t] closure, so the per-row hot path pays no AST
    dispatch: column references become direct array reads, constants are
    captured, binary operators are specialized per opcode at compile time,
    [IN]-list membership probes a pre-built hash set, and constant [LIKE]
    patterns are pre-classified into equality / prefix / suffix /
    substring matchers.

    Semantics are defined by the {!Eval} interpreter, which stays in the
    tree as the reference oracle: every compiled closure must return
    exactly what [Eval.eval] returns (including SQL three-valued logic and
    error behaviour), a contract enforced by the randomized property suite
    in [test/test_expr_compile.ml]. Setting
    [ctx.Exec_ctx.interpret_exprs] makes [compile] fall back to the
    interpreter — the oracle mode used by parity tests and the
    before/after benchmark. *)

open Storage
open Plan

type compiled = Tuple.t -> Value.t

let err fmt = Fmt.kstr (fun s -> raise (Eval.Eval_error s)) fmt

(* ------------------------------------------------------------------ *)
(* LIKE pattern pre-compilation                                        *)
(* ------------------------------------------------------------------ *)

let has_wildcard s = String.exists (fun c -> c = '%' || c = '_') s

let str_contains s lit =
  let nl = String.length lit and ns = String.length s in
  let rec go i = i + nl <= ns && (String.sub s i nl = lit || go (i + 1)) in
  nl = 0 || go 0

(** Classify a constant pattern once; the generic backtracking matcher
    ({!Value.like_match}) remains the fallback and the semantic oracle. *)
let like_compiled pattern : string -> bool =
  let n = String.length pattern in
  let inner l r = String.sub pattern l (n - l - r) in
  if not (has_wildcard pattern) then String.equal pattern
  else if
    n >= 2
    && pattern.[0] = '%'
    && pattern.[n - 1] = '%'
    && not (has_wildcard (inner 1 1))
  then
    let lit = inner 1 1 in
    fun s -> str_contains s lit
  else if n >= 1 && pattern.[n - 1] = '%' && not (has_wildcard (inner 0 1))
  then
    let prefix = inner 0 1 in
    fun s -> String.starts_with ~prefix s
  else if n >= 1 && pattern.[0] = '%' && not (has_wildcard (inner 1 0)) then
    let suffix = inner 1 0 in
    fun s -> String.ends_with ~suffix s
  else fun s -> Value.like_match ~pattern s

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let rec compile_value (ctx : Exec_ctx.t) (e : Scalar.t) : compiled =
  match e with
  | Scalar.Col i -> fun row -> row.(i)
  | Scalar.Const v -> fun _ -> v
  | Scalar.Param i -> (
    fun _ ->
      match ctx.Exec_ctx.params with
      | outer :: _ -> outer.(i)
      | [] -> err "correlation parameter ?%d outside an Apply" i)
  | Scalar.Binop (op, a, b) -> compile_binop ctx op a b
  | Scalar.Neg a ->
    let f = compile_value ctx a in
    fun row -> Value.neg (f row)
  | Scalar.Not a -> (
    let f = compile_value ctx a in
    fun row ->
      match f row with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Null
      | v -> err "NOT applied to non-boolean %s" (Value.to_string v))
  | Scalar.Is_null (a, neg) ->
    let f = compile_value ctx a in
    fun row -> Value.Bool (Value.is_null (f row) <> neg)
  | Scalar.Like (a, p, neg) -> compile_like ctx a p neg
  | Scalar.In_list (a, vs, neg) ->
    (* Membership by hash probe: [Value.hash] is consistent with
       [Value.equal] (Int/Float numeric unification included), so this
       matches the interpreter's linear [Array.exists] scan. *)
    let f = compile_value ctx a in
    let tbl = Value.Hashtbl_v.create (max 8 (2 * Array.length vs)) in
    Array.iter (fun v -> Value.Hashtbl_v.replace tbl v ()) vs;
    fun row ->
      (match f row with
      | Value.Null -> Value.Null
      | v -> Value.Bool (Value.Hashtbl_v.mem tbl v <> neg))
  | Scalar.Case (whens, els) ->
    let whens =
      List.map (fun (c, v) -> (compile_value ctx c, compile_value ctx v)) whens
    in
    let els = Option.map (compile_value ctx) els in
    fun row ->
      let rec go = function
        | (c, v) :: rest -> (
          match c row with Value.Bool true -> v row | _ -> go rest)
        | [] -> ( match els with Some e -> e row | None -> Value.Null)
      in
      go whens
  | Scalar.Func (f, args) -> compile_func ctx f args

and compile_binop ctx op a b : compiled =
  match op with
  | Sql.Ast.And -> (
    (* Kleene AND with shortcut. *)
    let fa = compile_value ctx a and fb = compile_value ctx b in
    fun row ->
      match fa row with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true -> (
        match fb row with
        | (Value.Bool _ | Value.Null) as v -> v
        | v -> err "AND applied to %s" (Value.to_string v))
      | Value.Null -> (
        match fb row with
        | Value.Bool false -> Value.Bool false
        | _ -> Value.Null)
      | v -> err "AND applied to %s" (Value.to_string v))
  | Sql.Ast.Or -> (
    let fa = compile_value ctx a and fb = compile_value ctx b in
    fun row ->
      match fa row with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false -> (
        match fb row with
        | (Value.Bool _ | Value.Null) as v -> v
        | v -> err "OR applied to %s" (Value.to_string v))
      | Value.Null -> (
        match fb row with
        | Value.Bool true -> Value.Bool true
        | _ -> Value.Null)
      | v -> err "OR applied to %s" (Value.to_string v))
  | _ -> (
    let fa = compile_value ctx a and fb = compile_value ctx b in
    (* Bind the operands left-to-right explicitly: OCaml argument order is
       unspecified, and the interpreter's error behaviour (which operand's
       type error escapes) is part of the contract. *)
    let strict f row =
      let va = fa row in
      let vb = fb row in
      f va vb
    in
    let cmp f =
      strict (fun va vb ->
          match Value.compare_sql va vb with
          | None -> Value.Null
          | Some c -> Value.Bool (f c))
    in
    match op with
    | Sql.Ast.Add -> strict Value.add
    | Sql.Ast.Sub -> strict Value.sub
    | Sql.Ast.Mul -> strict Value.mul
    | Sql.Ast.Div -> strict Value.div
    | Sql.Ast.Mod -> strict Value.modulo
    | Sql.Ast.Eq -> cmp (fun c -> c = 0)
    | Sql.Ast.Neq -> cmp (fun c -> c <> 0)
    | Sql.Ast.Lt -> cmp (fun c -> c < 0)
    | Sql.Ast.Le -> cmp (fun c -> c <= 0)
    | Sql.Ast.Gt -> cmp (fun c -> c > 0)
    | Sql.Ast.Ge -> cmp (fun c -> c >= 0)
    | Sql.Ast.Concat ->
      strict (fun va vb ->
          match (va, vb) with
          | Value.Null, _ | _, Value.Null -> Value.Null
          | a, b -> Value.Str (Value.to_string a ^ Value.to_string b))
    | Sql.Ast.And | Sql.Ast.Or -> assert false)

and compile_like ctx a p neg : compiled =
  let fa = compile_value ctx a in
  match p with
  | Scalar.Const (Value.Str pattern) -> (
    let matcher = like_compiled pattern in
    fun row ->
      match fa row with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Bool (matcher s <> neg)
      | v -> err "LIKE applied to non-string %s" (Value.to_string v))
  | _ -> (
    let fp = compile_value ctx p in
    fun row ->
      match (fa row, fp row) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | Value.Str s, Value.Str pattern ->
        Value.Bool (Value.like_match ~pattern s <> neg)
      | v, _ -> err "LIKE applied to non-string %s" (Value.to_string v))

and compile_func ctx f args : compiled =
  let cargs = Array.of_list (List.map (compile_value ctx) args) in
  let arg i row = cargs.(i) row in
  match f with
  | Scalar.F_now -> fun _ -> Value.Int ctx.Exec_ctx.now
  | Scalar.F_user_id -> fun _ -> Value.Str ctx.Exec_ctx.user
  | Scalar.F_sql_text -> fun _ -> Value.Str ctx.Exec_ctx.sql
  | Scalar.F_extract_year -> fun row -> Value.extract_year (arg 0 row)
  | Scalar.F_extract_month -> fun row -> Value.extract_month (arg 0 row)
  | Scalar.F_upper -> (
    fun row ->
      match arg 0 row with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Str (String.uppercase_ascii s)
      | v -> err "upper() on %s" (Value.to_string v))
  | Scalar.F_lower -> (
    fun row ->
      match arg 0 row with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Str (String.lowercase_ascii s)
      | v -> err "lower() on %s" (Value.to_string v))
  | Scalar.F_abs -> (
    fun row ->
      match arg 0 row with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (abs i)
      | Value.Float f -> Value.Float (Float.abs f)
      | v -> err "abs() on %s" (Value.to_string v))
  | Scalar.F_coalesce ->
    let n = Array.length cargs in
    fun row ->
      let rec go i =
        if i >= n then Value.Null
        else match cargs.(i) row with Value.Null -> go (i + 1) | v -> v
      in
      go 0
  | Scalar.F_substring -> (
    let has_len = Array.length cargs >= 3 in
    fun row ->
      match arg 0 row with
      | Value.Null -> Value.Null
      | Value.Str s ->
        let from = Value.to_int_exn (arg 1 row) in
        let len =
          if has_len then Value.to_int_exn (arg 2 row) else String.length s
        in
        (* SQL substring is 1-based; clamp to the string bounds. *)
        let start = max 0 (from - 1) in
        let len = max 0 (min len (String.length s - start)) in
        Value.Str
          (if start >= String.length s then "" else String.sub s start len)
      | v -> err "substring() on %s" (Value.to_string v))
  | Scalar.F_date_add u | Scalar.F_date_sub u -> (
    let sign = match f with Scalar.F_date_sub _ -> -1 | _ -> 1 in
    fun row ->
      match (arg 0 row, arg 1 row) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | d, Value.Int n -> (
        let z = Value.to_date_exn d in
        let n = sign * n in
        match u with
        | Sql.Ast.Days -> Value.Date (Value.add_days z n)
        | Sql.Ast.Months -> Value.Date (Value.add_months z n)
        | Sql.Ast.Years -> Value.Date (Value.add_years z n))
      | d, n ->
        err "date interval arithmetic on %s, %s" (Value.to_string d)
          (Value.to_string n))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Compile an expression under [ctx]. When [ctx.interpret_exprs] is set,
    returns a thunk over the reference interpreter instead. *)
let compile (ctx : Exec_ctx.t) (e : Scalar.t) : compiled =
  if ctx.Exec_ctx.interpret_exprs then fun row -> Eval.eval ctx row e
  else compile_value ctx e

(** Compile a predicate: holds only when it evaluates to [Bool true]. *)
let compile_pred (ctx : Exec_ctx.t) (e : Scalar.t) : Tuple.t -> bool =
  let f = compile ctx e in
  fun row -> match f row with Value.Bool true -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Batch kernels                                                       *)
(* ------------------------------------------------------------------ *)

(** Batch predicate: refines the batch's selection vector in place — the
    vectorized filter writes surviving indices instead of branching on a
    per-row row/None protocol. *)
let compile_pred_batch (ctx : Exec_ctx.t) (e : Scalar.t) : Batch.t -> unit =
  let test = compile_pred ctx e in
  fun b -> Batch.refine test b

(** Batch projection: evaluates the output expressions over every selected
    row into a fresh dense output batch. The chunk is allocated per call
    so it stays in the minor heap and dies young together with the tuples
    it holds — a reused (major-heap) buffer would force every output
    tuple to be promoted. *)
let compile_project_batch (ctx : Exec_ctx.t) (exprs : Scalar.t list) :
    Batch.t -> Batch.t =
  let fs = Array.of_list (List.map (compile ctx) exprs) in
  fun b ->
    let n = Batch.length b in
    let orows = Array.make n [||] in
    for i = 0 to n - 1 do
      let row = Batch.get b i in
      Array.unsafe_set orows i (Array.map (fun f -> f row) fs)
    done;
    Batch.dense orows
