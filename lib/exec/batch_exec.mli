(** Vectorized (batch-at-a-time) execution of physical plans: the getNext
    interface moves from [Tuple.t option] to [Batch.t option] — scans fill
    ~{!Batch.chunk_size}-row chunks, filters refine selection vectors in
    place, and hash join/aggregation/audit-probe kernels work on whole
    chunks. Semantics (emission order, 3VL, audit guarantees, budget
    accounting) are identical to {!Executor}, which remains the
    differential oracle; operators without batch kernels (Apply, the
    nested-loop joins, semi/anti join, bare Limit) delegate their subtree
    to the row engine behind a row→batch adapter. *)

open Storage

type bcursor = unit -> Batch.t option
type bfactory = unit -> bcursor

(** Compile a physical plan for the batch engine. Raises
    {!Executor.Exec_error} like the row engine (e.g. audit-ID table not
    installed, at open). *)
val compile : Exec_ctx.t -> Plan.Physical.t -> bfactory

(** Compile and run, materializing all rows (row order identical to
    {!Executor.run_list}). *)
val run_list : Exec_ctx.t -> Plan.Physical.t -> Tuple.t list

(** Compile and run, counting rows without materializing (benchmarks). *)
val run_count : Exec_ctx.t -> Plan.Physical.t -> int
