(** Scalar expression compilation: one walk of the {!Plan.Scalar.t} tree
    yields a [Tuple.t -> Value.t] closure for the per-row hot path —
    specialized binops, pre-hashed [IN] lists, pre-classified constant
    [LIKE] patterns. The {!Eval} interpreter defines the semantics and
    remains available as the reference oracle via
    [ctx.Exec_ctx.interpret_exprs]. *)

open Storage

type compiled = Tuple.t -> Value.t

(** Compile an expression under [ctx]. [Param]s and session state
    ([now()], [user_id()], [sql_text()]) are read from the context at call
    time, so a compiled closure stays valid across queries on the same
    context. Error behaviour matches [Eval.eval] ({!Eval.Eval_error}).
    When [ctx.interpret_exprs] is set, falls back to the interpreter. *)
val compile : Exec_ctx.t -> Plan.Scalar.t -> compiled

(** Compile a predicate: holds only when it evaluates to [Bool true]. *)
val compile_pred : Exec_ctx.t -> Plan.Scalar.t -> Tuple.t -> bool

(** Pre-classified matcher for a constant LIKE pattern (equality / prefix
    / suffix / substring fast paths, {!Value.like_match} fallback) —
    exposed for the property suite. *)
val like_compiled : string -> string -> bool

(** Batch predicate: refines the batch's selection vector in place (the
    vectorized filter — surviving indices are written, no per-row
    branching on the cursor protocol). *)
val compile_pred_batch : Exec_ctx.t -> Plan.Scalar.t -> Batch.t -> unit

(** Batch projection: evaluates the output expressions over every selected
    row, producing a dense batch. *)
val compile_project_batch :
  Exec_ctx.t -> Plan.Scalar.t list -> Batch.t -> Batch.t
