(** Aggregate accumulators with SQL semantics: NULLs are skipped,
    [COUNT(<star>)] counts rows, SUM/MIN/MAX over empty input yield NULL,
    DISTINCT filters duplicates per group. *)

open Storage

type state

val create : Plan.Logical.agg -> state

(** Feed one input value; [None] only for [COUNT(<star>)]. *)
val update : state -> Value.t option -> unit

(** Feed [n] argument-less inputs at once (the vectorized [COUNT(<star>)]
    kernel): equivalent to [n] [update st None] calls. *)
val update_many : state -> int -> unit

(** Feed one non-NULL unboxed int: equivalent to
    [update st (Some (Int i))] but allocation-free on the
    COUNT/SUM/AVG paths (the fused columnar aggregation kernel). *)
val add_int : state -> int -> unit

(** Feed one non-NULL unboxed float: equivalent to
    [update st (Some (Float f))], allocation-free like {!add_int}. *)
val add_float : state -> float -> unit

val final : state -> Value.t
