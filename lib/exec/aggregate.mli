(** Aggregate accumulators with SQL semantics: NULLs are skipped,
    [COUNT(<star>)] counts rows, SUM/MIN/MAX over empty input yield NULL,
    DISTINCT filters duplicates per group. *)

open Storage

type state

val create : Plan.Logical.agg -> state

(** Feed one input value; [None] only for [COUNT(<star>)]. *)
val update : state -> Value.t option -> unit

(** Feed [n] argument-less inputs at once (the vectorized [COUNT(<star>)]
    kernel): equivalent to [n] [update st None] calls. *)
val update_many : state -> int -> unit

val final : state -> Value.t
