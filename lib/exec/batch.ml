(** Column-chunked tuple batches for the vectorized executor.

    A batch is a chunk of up to {!chunk_size} rows plus a *selection
    vector*: [sel.(0 .. len-1)] are the indices (into [rows]) of the rows
    that are still alive, in emission order. Filters refine the selection
    in place instead of re-materializing survivors, so a
    scan→filter→filter pipeline touches each tuple array exactly once.
    Operators that build new tuples (Project, joins, aggregation) emit
    {e dense} batches where the selection is the identity. *)

open Storage

type t = {
  rows : Tuple.t array;  (** physical chunk; only selected slots are live *)
  sel : int array;  (** selection vector: indices into [rows] *)
  mutable len : int;  (** number of selected rows ([sel]'s live prefix) *)
}

(* Capped at OCaml's [Max_young_wosize] (256 words) so a fresh chunk is a
   *minor-heap* allocation: operators that build new tuples allocate a
   fresh chunk per batch, and the chunk dies young together with the
   tuples it holds. (Reusing one long-lived buffer instead would
   write-barrier every store and force each freshly built tuple to be
   promoted to the major heap.) *)
let chunk_size = 255

(* The identity selection is allocated per batch because downstream
   filters mutate it in place. *)
let of_array rows n =
  let sel = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    Array.unsafe_set sel i i
  done;
  { rows; sel; len = n }

let dense rows = of_array rows (Array.length rows)

(* Scans keep one reusable batch per cursor and [refill] it each call:
   their stores are *old* table rows (no young pointers to track or
   promote), and reuse skips re-allocating the chunk. Safe under the
   Volcano contract because every consumer fully processes a batch before
   pulling the next one. *)
let create () =
  { rows = Array.make chunk_size [||]; sel = Array.make chunk_size 0; len = 0 }

(** Declare the first [n] slots of [rows] live with the identity
    selection (resetting whatever a downstream filter left in [sel]). *)
let refill b n =
  let sel = b.sel in
  for i = 0 to n - 1 do
    Array.unsafe_set sel i i
  done;
  b.len <- n

let length b = b.len
let get b i = b.rows.(b.sel.(i))

let iter f b =
  for i = 0 to b.len - 1 do
    f b.rows.(b.sel.(i))
  done

(** Selected rows in emission order. *)
let to_list b =
  let acc = ref [] in
  for i = b.len - 1 downto 0 do
    acc := b.rows.(b.sel.(i)) :: !acc
  done;
  !acc

(** Keep only the selected rows for which [f] holds, preserving order —
    the in-place selection refinement every batch filter uses. *)
let refine f b =
  let rows = b.rows and sel = b.sel in
  let k = ref 0 in
  for i = 0 to b.len - 1 do
    let idx = Array.unsafe_get sel i in
    if f (Array.unsafe_get rows idx) then begin
      Array.unsafe_set sel !k idx;
      incr k
    end
  done;
  b.len <- !k
