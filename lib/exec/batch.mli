(** Column-chunked tuple batches for the vectorized executor: a chunk of
    up to {!chunk_size} rows plus a selection vector that filters refine
    in place (surviving row indices, in emission order). Dense batches —
    identity selection — come out of operators that build new tuples. *)

open Storage

type t = {
  rows : Tuple.t array;  (** physical chunk; only selected slots are live *)
  sel : int array;  (** selection vector: indices into [rows] *)
  mutable len : int;  (** number of selected rows ([sel]'s live prefix) *)
}

(** Target rows per batch (the scan fill size). Capped at the runtime's
    [Max_young_wosize] so fresh output chunks are minor-heap allocations
    that die young together with the tuples they hold. *)
val chunk_size : int

(** A reusable empty batch with {!chunk_size} capacity. Scans keep one per
    cursor and {!refill} it each call — their stores are old table rows,
    so reuse is free of write-barrier traffic. Operators that build {e new}
    tuples must allocate fresh chunks ({!dense} / {!of_array}) instead, or
    every output tuple would be promoted out of the reused buffer. Safe
    under the Volcano contract: a consumer fully processes each batch
    before pulling the next. *)
val create : unit -> t

(** Declare the first [n] slots of [rows] live, resetting the selection
    to the identity. *)
val refill : t -> int -> unit

(** [of_array rows n]: batch over the first [n] slots of [rows], all
    selected. *)
val of_array : Tuple.t array -> int -> t

(** Batch over the whole array, all rows selected. *)
val dense : Tuple.t array -> t

(** Selected-row count. *)
val length : t -> int

(** [get b i] is the [i]-th {e selected} row. *)
val get : t -> int -> Tuple.t

(** Iterate the selected rows in emission order. *)
val iter : (Tuple.t -> unit) -> t -> unit

(** Selected rows in emission order. *)
val to_list : t -> Tuple.t list

(** Keep only the selected rows satisfying the predicate (in-place
    selection refinement, order-preserving). *)
val refine : (Tuple.t -> bool) -> t -> unit
