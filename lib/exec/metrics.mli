(** Per-operator execution metrics, keyed by physical identity of
    {!Plan.Physical.t} nodes. {!Executor.compile} registers one record per
    node when collection is enabled and wraps each cursor so every
    [getNext] is counted and timed; audit operators additionally track
    their probe/hit counters (the no-filtering invariant of §IV-A2 is
    directly visible as input rows = output rows = probes). *)

type op_stats = {
  label : string;  (** physical operator name, e.g. [HashJoin] *)
  est_rows : float;  (** planner estimate recorded on the node *)
  mutable opens : int;  (** cursor opens; >1 under a correlated Apply *)
  mutable calls : int;  (** getNext invocations, across all opens *)
  mutable batches : int;  (** batches emitted (vectorized engine only) *)
  mutable rows : int;  (** rows emitted, across all opens *)
  mutable time_s : float;  (** cumulative wall time inside getNext *)
  mutable probes : int;  (** audit operators: hash probes issued *)
  mutable hits : int;  (** audit operators: probes finding a sensitive ID *)
}

type t

val create : unit -> t

(** Collection is off by default — the cursor wrapper costs two clock
    reads per row — and is switched on per query by EXPLAIN ANALYZE, the
    benchmark harness, or [Database.set_collect_metrics]. *)
val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** Drop all records (fresh query). The enabled flag is kept. *)
val clear : t -> unit

(** Monotonic clock used for operator timings. *)
val now_s : unit -> float

(** Stats recorded for a node, if it was registered this query. *)
val find : t -> Plan.Physical.t -> op_stats option

(** Find-or-create the stats record for a physical-plan node. *)
val register : t -> Plan.Physical.t -> op_stats

type op_report = {
  r_label : string;
  r_est_rows : float;
  r_opens : int;
  r_calls : int;
  r_batches : int;
  r_rows : int;
  r_time_s : float;
  r_probes : int;
  r_hits : int;
}

(** Immutable snapshot of all records in plan pre-order. *)
val report : t -> op_report list

(** Root operator's inclusive wall time, if anything ran. *)
val total_time_s : t -> float

(** Cumulative audit-operator [(probes, hits)] across the plan. *)
val audit_totals : t -> int * int
