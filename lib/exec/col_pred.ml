(** Vectorized predicate kernels over columnar tables (see the interface
    for the contract). *)

open Storage
open Plan
module CS = Column_store

type kernel = int -> int

let t_false = 0
let t_true = 1
let t_unknown = 2
let holds = t_true
let of_bool b = if b then t_true else t_false

(* Fold a column-free subtree to its value using the row compiler on the
   empty tuple. [None] when the subtree references columns/parameters or
   its evaluation raises — in the latter case the caller's fallback path
   reproduces the row engine's per-row error exactly. *)
let fold_const ctx e =
  if Scalar.free_cols e = [] && Scalar.free_params e = [] then
    try Some (Expr_compile.compile ctx e [||]) with _ -> None
  else None

let cmp_test : Sql.Ast.binop -> (int -> bool) option = function
  | Sql.Ast.Eq -> Some (fun c -> c = 0)
  | Sql.Ast.Neq -> Some (fun c -> c <> 0)
  | Sql.Ast.Lt -> Some (fun c -> c < 0)
  | Sql.Ast.Le -> Some (fun c -> c <= 0)
  | Sql.Ast.Gt -> Some (fun c -> c > 0)
  | Sql.Ast.Ge -> Some (fun c -> c >= 0)
  | _ -> None

(* A witness cell value of the column's type, for the constant cross-rank
   comparisons ([compare_total] only looks at the ranks there). *)
let witness = function
  | Datatype.T_bool -> Value.Bool false
  | Datatype.T_int -> Value.Int 0
  | Datatype.T_float -> Value.Float 0.0
  | Datatype.T_string -> Value.Str ""
  | Datatype.T_date -> Value.Date 0

(* [cell <op> v] (or [v <op> cell] when [flip]) against column [i].
   Mirrors [Value.compare_sql]: NULL on either side is unknown, Int/Float
   compare numerically, mixed ranks compare by rank (a constant verdict). *)
let cmp_kernel cs i op v flip : kernel =
  let test = match cmp_test op with Some f -> f | None -> assert false in
  let tri c = of_bool (test (if flip then -c else c)) in
  match v with
  | Value.Null -> fun _ -> t_unknown
  | _ -> (
    let nulls = CS.col_nulls cs i in
    let guard f s = if CS.Bitmap.get nulls s then t_unknown else f s in
    let ty = CS.col_type cs i in
    match (CS.col_data cs i, ty, v) with
    | CS.Ints a, Datatype.T_int, Value.Int k ->
      guard (fun s -> tri (Int.compare (Array.unsafe_get a s) k))
    | CS.Ints a, Datatype.T_int, Value.Float f ->
      guard (fun s ->
          tri (Float.compare (float_of_int (Array.unsafe_get a s)) f))
    | CS.Ints a, Datatype.T_date, Value.Date d ->
      guard (fun s -> tri (Int.compare (Array.unsafe_get a s) d))
    | CS.Ints a, Datatype.T_bool, Value.Bool b ->
      let bv = Bool.to_int b in
      guard (fun s -> tri (Int.compare (Array.unsafe_get a s) bv))
    | CS.Floats a, _, Value.Float f ->
      guard (fun s -> tri (Float.compare (Array.unsafe_get a s) f))
    | CS.Floats a, _, Value.Int k ->
      let f = float_of_int k in
      guard (fun s -> tri (Float.compare (Array.unsafe_get a s) f))
    | CS.Codes (a, d), _, Value.Str str ->
      (* One comparison per distinct string: pre-evaluate the verdict for
         every dictionary code. *)
      let n = CS.Dict.size d in
      let verdict =
        Array.init n (fun c -> tri (String.compare (CS.Dict.decode d c) str))
      in
      guard (fun s ->
          let c = Array.unsafe_get a s in
          if c < n then Array.unsafe_get verdict c
          else tri (String.compare (CS.Dict.decode d c) str))
    | _, ty, v ->
      (* Mixed ranks: the same verdict for every non-NULL cell. *)
      let k = tri (Value.compare_total (witness ty) v) in
      guard (fun _ -> k))

let in_table vs =
  let tbl = Value.Hashtbl_v.create (max 8 (2 * Array.length vs)) in
  Array.iter (fun v -> Value.Hashtbl_v.replace tbl v ()) vs;
  tbl

let rec compile ctx cs (e : Scalar.t) : kernel option =
  match e with
  | Scalar.Const (Value.Bool b) -> Some (fun _ -> of_bool b)
  | Scalar.Const Value.Null -> Some (fun _ -> t_unknown)
  | Scalar.Col i when CS.col_type cs i = Datatype.T_bool -> (
    match CS.col_data cs i with
    | CS.Ints a ->
      let nulls = CS.col_nulls cs i in
      Some
        (fun s ->
          if CS.Bitmap.get nulls s then t_unknown else Array.unsafe_get a s)
    | _ -> None)
  | Scalar.Not a -> (
    match compile ctx cs a with
    | Some k ->
      Some
        (fun s ->
          match k s with 0 -> t_true | 1 -> t_false | _ -> t_unknown)
    | None -> None)
  | Scalar.Binop (Sql.Ast.And, a, b) -> (
    match (compile ctx cs a, compile ctx cs b) with
    | Some ka, Some kb ->
      (* Kleene AND with the same shortcut as the row compiler (safe:
         supported sub-kernels never raise). *)
      Some
        (fun s ->
          match ka s with
          | 0 -> t_false
          | 1 -> kb s
          | _ -> if kb s = t_false then t_false else t_unknown)
    | _ -> None)
  | Scalar.Binop (Sql.Ast.Or, a, b) -> (
    match (compile ctx cs a, compile ctx cs b) with
    | Some ka, Some kb ->
      Some
        (fun s ->
          match ka s with
          | 1 -> t_true
          | 0 -> kb s
          | _ -> if kb s = t_true then t_true else t_unknown)
    | _ -> None)
  | Scalar.Binop (op, a, b) when cmp_test op <> None -> (
    match (a, b) with
    | Scalar.Col i, rhs -> (
      match fold_const ctx rhs with
      | Some v -> Some (cmp_kernel cs i op v false)
      | None -> try_const ctx e)
    | lhs, Scalar.Col i -> (
      match fold_const ctx lhs with
      | Some v -> Some (cmp_kernel cs i op v true)
      | None -> try_const ctx e)
    | _ -> try_const ctx e)
  | Scalar.Is_null (Scalar.Col i, neg) ->
    let nulls = CS.col_nulls cs i in
    Some (fun s -> of_bool (CS.Bitmap.get nulls s <> neg))
  | Scalar.Like (Scalar.Col i, p, neg) -> (
    match CS.col_data cs i with
    | CS.Codes (a, d) -> (
      match fold_const ctx p with
      | Some (Value.Str pattern) ->
        let nulls = CS.col_nulls cs i in
        let n = CS.Dict.size d in
        let verdict =
          Array.init n (fun c ->
              of_bool (Value.like_match ~pattern (CS.Dict.decode d c) <> neg))
        in
        Some
          (fun s ->
            if CS.Bitmap.get nulls s then t_unknown
            else
              let c = Array.unsafe_get a s in
              if c < n then Array.unsafe_get verdict c
              else
                of_bool (Value.like_match ~pattern (CS.Dict.decode d c) <> neg))
      | Some Value.Null ->
        (* NULL pattern: unknown whether the cell is NULL or a string. *)
        Some (fun _ -> t_unknown)
      | _ -> None)
    | _ -> None)
  | Scalar.In_list (Scalar.Col i, vs, neg) -> (
    let tbl = in_table vs in
    let nulls = CS.col_nulls cs i in
    let guard f s = if CS.Bitmap.get nulls s then t_unknown else f s in
    match (CS.col_data cs i, CS.col_type cs i) with
    | CS.Codes (a, d), _ ->
      let n = CS.Dict.size d in
      let verdict =
        Array.init n (fun c ->
            of_bool
              (Value.Hashtbl_v.mem tbl (Value.Str (CS.Dict.decode d c)) <> neg))
      in
      Some
        (guard (fun s ->
             let c = Array.unsafe_get a s in
             if c < n then Array.unsafe_get verdict c
             else
               of_bool
                 (Value.Hashtbl_v.mem tbl (Value.Str (CS.Dict.decode d c))
                 <> neg)))
    | CS.Ints a, Datatype.T_int ->
      Some
        (guard (fun s ->
             of_bool
               (Value.Hashtbl_v.mem tbl (Value.Int (Array.unsafe_get a s))
               <> neg)))
    | CS.Ints a, Datatype.T_date ->
      Some
        (guard (fun s ->
             of_bool
               (Value.Hashtbl_v.mem tbl (Value.Date (Array.unsafe_get a s))
               <> neg)))
    | CS.Ints a, Datatype.T_bool ->
      Some
        (guard (fun s ->
             of_bool
               (Value.Hashtbl_v.mem tbl (Value.Bool (Array.unsafe_get a s <> 0))
               <> neg)))
    | CS.Floats a, _ ->
      Some
        (guard (fun s ->
             of_bool
               (Value.Hashtbl_v.mem tbl (Value.Float (Array.unsafe_get a s))
               <> neg)))
    | _ -> None)
  | e -> try_const ctx e

(* A residual column-free predicate (e.g. [1 = 1] or an [Is_null] over a
   constant subtree): one verdict for every slot. Anything non-boolean is
   left to the fallback (the row engine's error behaviour is part of the
   contract). *)
and try_const ctx e =
  match fold_const ctx e with
  | Some (Value.Bool b) -> Some (fun _ -> of_bool b)
  | Some Value.Null -> Some (fun _ -> t_unknown)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Numeric expression kernels (fused aggregation arguments)            *)
(* ------------------------------------------------------------------ *)

type num = Kint of (int -> int) | Kfloat of (int -> float)

let promote = function
  | Kint f -> fun s -> float_of_int (f s)
  | Kfloat f -> f

(* Compile a numeric scalar over the columnar store into an unboxed
   value kernel plus a NULL kernel, mirroring [Value.add]/[sub]/[mul]
   exactly: NULL propagates, Int op Int stays Int (native-int wrap
   included), any Float operand promotes both sides to float. Date and
   Bool columns are excluded (Date+Int would change representation;
   arithmetic on Bool is a row-engine type error), as is division
   (division-by-zero must raise per row) — those shapes return [None]
   and the caller falls back to the row-compiled path. *)
let rec compile_num ctx cs (e : Scalar.t) : (num * (int -> bool)) option =
  match e with
  | Scalar.Col i -> (
    let nulls = CS.col_nulls cs i in
    let nullk s = CS.Bitmap.get nulls s in
    match (CS.col_data cs i, CS.col_type cs i) with
    | CS.Ints a, Datatype.T_int ->
      Some (Kint (fun s -> Array.unsafe_get a s), nullk)
    | CS.Floats a, _ -> Some (Kfloat (fun s -> Array.unsafe_get a s), nullk)
    | _ -> None)
  | Scalar.Binop (((Sql.Ast.Add | Sql.Ast.Sub | Sql.Ast.Mul) as op), a, b)
    -> (
    match (compile_num ctx cs a, compile_num ctx cs b) with
    | Some (ka, na), Some (kb, nb) ->
      let nullk s = na s || nb s in
      let k =
        match (ka, kb) with
        | Kint fa, Kint fb ->
          let iop =
            match op with
            | Sql.Ast.Add -> ( + )
            | Sql.Ast.Sub -> ( - )
            | _ -> ( * )
          in
          Kint (fun s -> iop (fa s) (fb s))
        | _ ->
          let fop =
            match op with
            | Sql.Ast.Add -> ( +. )
            | Sql.Ast.Sub -> ( -. )
            | _ -> ( *. )
          in
          let pa = promote ka and pb = promote kb in
          Kfloat (fun s -> fop (pa s) (pb s))
      in
      Some (k, nullk)
    | _ -> None)
  | e -> (
    (* Column-free subtree (constants, parameters, [now()]): folded once
       at kernel-compile time, which happens per execution. *)
    match fold_const ctx e with
    | Some (Value.Int k) -> Some (Kint (fun _ -> k), fun _ -> false)
    | Some (Value.Float f) -> Some (Kfloat (fun _ -> f), fun _ -> false)
    | Some Value.Null -> Some (Kint (fun _ -> 0), fun _ -> true)
    | _ -> None)
