(** Push-based compiled execution of physical plans (data-centric).

    The third engine. Instead of pulling tuples through a per-operator
    getNext virtual call ({!Executor}) or batches through chunked kernels
    ({!Batch_exec}), [compile] splits the plan into pipelines at the
    blocking operators — hash-join and semi-join builds, HashAgg, Sort,
    TopK, Except/Intersect builds — and fuses each pipeline
    (scan→filter→project→audit-probe→…) into one push-based closure: the
    scan loop drives every row through plain OCaml function composition,
    with the audit probe of §IV-A2 lowered to an inline branch in the
    loop body. On columnar tables a Filter directly over a scan compiles
    the predicate to a slot-level {!Col_pred} kernel and materializes
    only the surviving rows.

    Semantics — emission order, 3VL, audit evidence, budget accounting
    (per-row [note_scanned], [note_materialized] at the same buffering
    points) and the row engine's open-time effect order — are identical
    to {!Executor}, which remains the differential oracle.

    Step-aside rules: operators whose protocols are pull-bound
    (correlated [Apply], [Index_nl_join] probe chains, bare [Limit])
    delegate their subtree to the row engine behind a pull→push adapter;
    when the fault-injection kit is armed the whole plan steps aside to
    {!Executor} so per-operator fault sites stay identical. *)

open Storage

type sink = Tuple.t -> unit

(** A compiled pipeline tree: [run sink] pushes every output row into
    [sink] in the row engine's emission order and returns when the input
    is exhausted. *)
type source = sink -> unit

(** A factory, as in {!Executor}: invoking it performs the open-time
    effects (table resolution, audit-set lookup, blocking builds) in the
    row engine's order and returns the streaming source. *)
type factory = unit -> source

(** Compile a physical plan for the push engine. Raises
    {!Executor.Exec_error} like the row engine (e.g. audit-ID table not
    installed, at open). *)
val compile : Exec_ctx.t -> Plan.Physical.t -> factory

(** Compile and run, materializing all rows (row order identical to
    {!Executor.run_list}). *)
val run_list : Exec_ctx.t -> Plan.Physical.t -> Tuple.t list

(** Compile and run, counting rows without materializing (benchmarks). *)
val run_count : Exec_ctx.t -> Plan.Physical.t -> int
