(** Execution context: everything a running plan needs besides its
    operators — the catalog, session state, correlation parameters, the
    audit machinery, and the virtual-deletion hook used by the exact
    offline auditor.

    ACCESSED representation (§IV-A2): each audit expression's sensitive-ID
    table maps IDs to {e generation marks}. The audit operator records an
    access by storing the current query generation into the probed entry —
    probe-and-mark is one hash lookup — and bumping the generation
    invalidates every mark in O(1). *)

open Storage

type t = {
  catalog : Catalog.t;
  mutable session_id : int;
      (** identity of the owning session in served (multi-client) mode;
          0 for the single-session engine. Stamped onto WAL evidence
          records so concurrent audit trails stay attributable. *)
  mutable now : int;  (** logical clock behind [now()] *)
  mutable user : string;  (** session user behind [user_id()] *)
  mutable sql : string;  (** statement text behind [sql_text()] *)
  mutable hide : (string * int * Value.t) option;
      (** virtually delete the rows of [table] whose column equals the
          value — evaluates Q(D - t) for Definition 2.3 without mutating
          the database *)
  audit_sets : (string, int ref Value.Hashtbl_v.t) Hashtbl.t;
      (** per audit expression: sensitive ID -> generation mark *)
  mutable generation : int;
  extra_accessed : (string, unit Value.Hashtbl_v.t) Hashtbl.t;
      (** accesses whose ID left the sensitive view mid-statement (DML
          read-accesses, §II-B) *)
  mutable params : Tuple.t list;
      (** correlation stack: the nearest enclosing Apply's outer row is the
          head *)
  mutable interpret_exprs : bool;
      (** evaluate scalars with the {!Eval} reference interpreter instead
          of compiled closures (oracle mode for parity tests and the
          before/after benchmark) *)
  mutable audit_probes : int;  (** statistics: rows seen by audit operators *)
  mutable audit_hits : int;  (** statistics: rows matching a sensitive ID *)
  mutable rows_scanned : int;
  metrics : Metrics.t;
      (** per-operator stats registry; populated only while metrics
          collection is enabled (EXPLAIN ANALYZE, benchmarks) *)
  mutable timeout_s : float option;
      (** per-query wall-clock budget; [reset_query_state] arms the
          deadline from it *)
  mutable deadline : float option;  (** monotonic deadline of this query *)
  mutable row_budget : int option;  (** max base-table rows scanned *)
  mutable mem_budget : int option;
      (** max tuples materialized by blocking operators *)
  mutable tuples_materialized : int;
  mutable guard_ticks : int;
  faults : Engine_core.Faultkit.t;
      (** fault-injection plan consulted by the executor, the trigger
          runner and the audit log *)
}

val create : ?session_id:int -> Catalog.t -> t

(** Install the sensitive-ID mark table an audit operator probes
    (normally via [Db.Database.install_audit_sets]). *)
val set_audit_ids :
  t -> audit_name:string -> int ref Value.Hashtbl_v.t -> unit

val audit_ids : t -> audit_name:string -> int ref Value.Hashtbl_v.t option

(** Record an access for an ID that may no longer be in the sensitive view
    (DML read-accesses, §II-B). *)
val add_extra_accessed : t -> audit_name:string -> Value.t -> unit

(** Start a fresh query: bumps the generation (clearing ACCESSED in O(1))
    and resets the correlation stack and counters. *)
val reset_query_state : t -> unit

(** Sorted ACCESSED IDs of the current generation for an audit
    expression. *)
val accessed_list : t -> audit_name:string -> Value.t list

val accessed_count : t -> audit_name:string -> int

(** {1 Query guards}

    Cooperative cancellation: a tripped guard raises
    [Engine_core.Engine_error.Error (Cancelled _)]. The database layer
    still flushes the partial ACCESSED set before re-raising. *)

(** Any guard armed for the current query? *)
val guards_armed : t -> bool

(** Check the wall-clock deadline now (cursor opens). *)
val check_deadline : t -> unit

(** Cheap periodic guard check (per [getNext] when guards are armed). *)
val check_guards : t -> unit

(** Count a base-table row against the scan budget. *)
val note_scanned : t -> unit

(** Count [n] base-table rows at once (the vectorized scan's per-chunk
    charge). Only valid when no row budget is armed — it never cancels;
    with a budget armed, charge per row via {!note_scanned} so the query
    cancels at the exact row the row engine would. *)
val note_scanned_many : t -> int -> unit

(** Count a tuple materialized by a blocking operator against the memory
    budget. *)
val note_materialized : t -> unit
