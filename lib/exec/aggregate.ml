(** Aggregate accumulators (COUNT/SUM/AVG/MIN/MAX, with DISTINCT).

    SQL semantics: NULL inputs are skipped by every aggregate; [COUNT(<star>)]
    counts rows; SUM/MIN/MAX of an empty (or all-NULL) input is NULL; AVG
    divides by the non-NULL count. *)

open Storage
open Plan

type state = {
  agg : Logical.agg;
  mutable count : int;
  mutable sum : float;
  mutable sum_is_int : bool;
  mutable best : Value.t;  (** current MIN/MAX, Null until first input *)
  seen : unit Value.Hashtbl_v.t option;  (** DISTINCT filter *)
}

let create (agg : Logical.agg) =
  {
    agg;
    count = 0;
    sum = 0.0;
    sum_is_int = true;
    best = Value.Null;
    seen =
      (if agg.Logical.distinct then Some (Value.Hashtbl_v.create 16) else None);
  }

(** Feed one input. [v = None] only for COUNT(<star>). *)
let update st (v : Value.t option) =
  match v with
  | None -> st.count <- st.count + 1
  | Some Value.Null -> ()
  | Some v -> (
    let fresh =
      match st.seen with
      | None -> true
      | Some tbl ->
        if Value.Hashtbl_v.mem tbl v then false
        else begin
          Value.Hashtbl_v.replace tbl v ();
          true
        end
    in
    if fresh then
      match st.agg.Logical.func with
      | Logical.Count -> st.count <- st.count + 1
      | Logical.Sum | Logical.Avg ->
        st.count <- st.count + 1;
        (match v with
        | Value.Int i -> st.sum <- st.sum +. float_of_int i
        | Value.Float f ->
          st.sum <- st.sum +. f;
          st.sum_is_int <- false
        | v -> Value.type_error "SUM/AVG of non-number %s" (Value.to_string v));
        ()
      | Logical.Min ->
        if Value.is_null st.best || Value.compare_total v st.best < 0 then
          st.best <- v
      | Logical.Max ->
        if Value.is_null st.best || Value.compare_total v st.best > 0 then
          st.best <- v)

(** Feed [n] argument-less inputs at once — the vectorized COUNT(<star>)
    kernel advances per batch instead of per row. Equivalent to [n]
    [update st None] calls. *)
let update_many st n = st.count <- st.count + n

(** Feed one non-NULL unboxed int — the fused columnar aggregation
    kernel's entry point: exactly [update st (Some (Int i))] without the
    [Some]/[Int] allocations on the SUM/AVG/COUNT hot paths. *)
let add_int st i =
  match (st.seen, st.agg.Logical.func) with
  | None, Logical.Count -> st.count <- st.count + 1
  | None, (Logical.Sum | Logical.Avg) ->
    st.count <- st.count + 1;
    st.sum <- st.sum +. float_of_int i
  | _ -> update st (Some (Value.Int i))

(** Non-NULL unboxed float counterpart of {!add_int}. *)
let add_float st f =
  match (st.seen, st.agg.Logical.func) with
  | None, Logical.Count -> st.count <- st.count + 1
  | None, (Logical.Sum | Logical.Avg) ->
    st.count <- st.count + 1;
    st.sum <- st.sum +. f;
    st.sum_is_int <- false
  | _ -> update st (Some (Value.Float f))

let final st : Value.t =
  match st.agg.Logical.func with
  | Logical.Count -> Value.Int st.count
  | Logical.Sum ->
    if st.count = 0 then Value.Null
    else if st.sum_is_int && Float.is_integer st.sum
            && Float.abs st.sum < 4e15 then
      Value.Int (int_of_float st.sum)
    else Value.Float st.sum
  | Logical.Avg ->
    if st.count = 0 then Value.Null
    else Value.Float (st.sum /. float_of_int st.count)
  | Logical.Min | Logical.Max -> st.best
