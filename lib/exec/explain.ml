(** EXPLAIN ANALYZE rendering: the physical plan tree annotated per
    operator with the planner's estimated rows next to the actual row
    counts, loop counts and inclusive wall time, followed by a query-level
    summary. Audit operators additionally show their probe and hit
    counters, so the no-filtering invariant (input rows = output rows =
    probes, §IV-A2) is directly visible in the output. *)

let annot (m : Metrics.t) (node : Plan.Physical.t) : string option =
  let est = Printf.sprintf "est rows=%.0f" node.Plan.Physical.est in
  match Metrics.find m node with
  | None -> Some (Printf.sprintf "(%s, never executed)" est)
  | Some s ->
    let audit =
      if s.Metrics.probes > 0 then
        Printf.sprintf " probes=%d hits=%d" s.Metrics.probes s.Metrics.hits
      else ""
    in
    let batches =
      if s.Metrics.batches > 0 then
        Printf.sprintf " batches=%d" s.Metrics.batches
      else ""
    in
    if s.Metrics.opens = 0 then
      if s.Metrics.rows = 0 && s.Metrics.probes = 0 then
        Some (Printf.sprintf "(%s, never executed)" est)
      else
        (* Folded into an index-nested-loop lookup: row counts are
           attributed, time stays on the enclosing join. *)
        Some
          (Printf.sprintf "(%s actual rows=%d%s)" est s.Metrics.rows audit)
    else
      Some
        (Printf.sprintf "(%s actual rows=%d loops=%d%s time=%.3fms%s)" est
           s.Metrics.rows s.Metrics.opens batches
           (s.Metrics.time_s *. 1000.0)
           audit)

(** Render the annotated tree plus summary for the metrics collected by the
    last run of [plan] under [ctx]. *)
let render (ctx : Exec_ctx.t) (plan : Plan.Physical.t) : string =
  let m = ctx.Exec_ctx.metrics in
  let tree = Plan.Physical.to_string_annotated ~annot:(annot m) plan in
  let probes, hits = Metrics.audit_totals m in
  Printf.sprintf
    "%sExecution time: %.3f ms\n\
     Rows scanned: %d, audit probes: %d, audit hits: %d\n"
    tree
    (Metrics.total_time_s m *. 1000.0)
    ctx.Exec_ctx.rows_scanned probes hits
