(** Vectorized predicate kernels over columnar tables.

    [compile ctx cs pred] compiles a scan predicate into a slot-level
    kernel over the table's typed column vectors: the kernel maps a slot
    number to the predicate's three-valued verdict without materializing
    the row. Comparisons against constants read the unboxed [int array] /
    [float array] directly; string comparisons, [LIKE] and [IN] against
    dictionary-encoded columns are pre-evaluated per dictionary code (one
    evaluation per {e distinct} value, not per row); NULLs come from the
    column's bitmap.

    Verdicts use the usual three-valued encoding: [0] = false, [1] = true,
    [2] = unknown (NULL). A filter keeps a slot iff the verdict is [1] —
    the same "holds only on [Bool true]" contract as
    {!Expr_compile.compile_pred}, whose semantics (numeric Int/Float
    interleaving, rank ordering across types, Kleene AND/OR, IN-list hash
    membership) these kernels reproduce exactly.

    Returns [None] when any subexpression falls outside the supported
    shapes (or could raise, e.g. [LIKE] on a non-string column) — the
    caller must then fall back to materializing rows and running the
    compiled row predicate, which also preserves error behaviour. *)

(** Slot -> verdict (0 = false, 1 = true, 2 = unknown). *)
type kernel = int -> int

(** The verdict on which a filter keeps the slot. *)
val holds : int

val compile :
  Exec_ctx.t -> Storage.Column_store.t -> Plan.Scalar.t -> kernel option

(** Unboxed numeric expression kernel: [Kint] when the row engine would
    produce [Value.Int] for every non-NULL input (native-int wrap
    included), [Kfloat] when it would produce [Value.Float]. *)
type num = Kint of (int -> int) | Kfloat of (int -> float)

(** [compile_num ctx cs e] compiles a numeric scalar (columns, folded
    constants, [+]/[-]/[*]) into a value kernel and a NULL kernel: the
    value kernel is only meaningful on slots where the NULL kernel is
    false. [None] for any shape whose arithmetic the kernels cannot
    reproduce exactly (Date/Bool columns, division, strings) — the
    fused aggregation falls back to the row-compiled path there. *)
val compile_num :
  Exec_ctx.t ->
  Storage.Column_store.t ->
  Plan.Scalar.t ->
  (num * (int -> bool)) option
