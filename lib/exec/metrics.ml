(** Per-operator execution metrics.

    When enabled, {!Executor.compile} registers one [op_stats] record per
    plan node and wraps every cursor so each [getNext] call is counted and
    timed. The audit operator additionally records its probe/hit counters
    per instance, so EXPLAIN ANALYZE can show that an audit operator's
    input and output row counts are identical (the no-filtering invariant,
    §IV-A2) and exactly how many hash probes it charged the plan.

    Registration is keyed by *physical* identity of the plan node: the
    executor and the EXPLAIN ANALYZE renderer traverse the same immutable
    tree, so [find] recovers each node's record without any node-ID
    plumbing. Collection is off by default — the wrapper costs two clock
    reads per row — and is switched on per query by EXPLAIN ANALYZE, the
    benchmark harness, or {!Database.set_collect_metrics}. *)

type op_stats = {
  label : string;  (** physical operator name, e.g. [HashJoin] *)
  mutable phys : string option;
      (** refinement chosen at compile time (e.g. [IndexNLJoin]) *)
  mutable opens : int;  (** cursor opens; >1 under a correlated Apply *)
  mutable calls : int;  (** getNext invocations, across all opens *)
  mutable rows : int;  (** rows emitted, across all opens *)
  mutable time_s : float;  (** cumulative wall time inside getNext *)
  mutable probes : int;  (** audit operators: hash probes issued *)
  mutable hits : int;  (** audit operators: probes finding a sensitive ID *)
}

type t = {
  mutable enabled : bool;
  mutable entries : (Plan.Logical.t * op_stats) list;
      (** registration (pre-)order, reversed; keyed by physical equality *)
}

let create () = { enabled = false; entries = [] }
let enabled m = m.enabled
let set_enabled m b = m.enabled <- b

(** Drop all records (fresh query). The enabled flag is kept. *)
let clear m = m.entries <- []

(* Monotonic source: operator timings and guard deadlines must never go
   backwards when NTP steps the wall clock. *)
let now_s () = Engine_core.Mono_clock.now ()

(* ------------------------------------------------------------------ *)
(* Labels                                                              *)
(* ------------------------------------------------------------------ *)

let label_of (plan : Plan.Logical.t) =
  match plan with
  | Plan.Logical.Scan { table; alias; _ } ->
    if table = alias then "Scan " ^ table
    else Printf.sprintf "Scan %s as %s" table alias
  | Plan.Logical.Filter _ -> "Filter"
  | Plan.Logical.Project _ -> "Project"
  | Plan.Logical.Join { kind = Plan.Logical.J_inner; _ } -> "InnerJoin"
  | Plan.Logical.Join { kind = Plan.Logical.J_left; _ } -> "LeftJoin"
  | Plan.Logical.Semi_join { anti = false; _ } -> "SemiJoin"
  | Plan.Logical.Semi_join { anti = true; _ } -> "AntiJoin"
  | Plan.Logical.Apply { kind = Plan.Logical.A_semi; _ } -> "SemiApply"
  | Plan.Logical.Apply { kind = Plan.Logical.A_anti; _ } -> "AntiApply"
  | Plan.Logical.Apply { kind = Plan.Logical.A_scalar; _ } -> "ScalarApply"
  | Plan.Logical.Group_by _ -> "GroupBy"
  | Plan.Logical.Sort _ -> "Sort"
  | Plan.Logical.Limit { n; _ } -> Printf.sprintf "Limit %d" n
  | Plan.Logical.Distinct _ -> "Distinct"
  | Plan.Logical.Audit { audit_name; _ } ->
    Printf.sprintf "Audit[%s]" audit_name
  | Plan.Logical.Set_op { op = Sql.Ast.Union; _ } -> "Union"
  | Plan.Logical.Set_op { op = Sql.Ast.Union_all; _ } -> "UnionAll"
  | Plan.Logical.Set_op { op = Sql.Ast.Except; _ } -> "Except"
  | Plan.Logical.Set_op { op = Sql.Ast.Intersect; _ } -> "Intersect"

(* ------------------------------------------------------------------ *)
(* Registration and lookup                                             *)
(* ------------------------------------------------------------------ *)

let find m (node : Plan.Logical.t) : op_stats option =
  let rec go = function
    | [] -> None
    | (k, s) :: rest -> if k == node then Some s else go rest
  in
  go m.entries

(** Find-or-create the stats record for a plan node. *)
let register m (node : Plan.Logical.t) : op_stats =
  match find m node with
  | Some s -> s
  | None ->
    let s =
      {
        label = label_of node;
        phys = None;
        opens = 0;
        calls = 0;
        rows = 0;
        time_s = 0.0;
        probes = 0;
        hits = 0;
      }
    in
    m.entries <- (node, s) :: m.entries;
    s

(** Record the physical operator chosen for a node at compile time. *)
let set_phys m node phys =
  match find m node with None -> () | Some s -> s.phys <- Some phys

let display_label s = match s.phys with Some p -> p | None -> s.label

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type op_report = {
  r_label : string;
  r_opens : int;
  r_calls : int;
  r_rows : int;
  r_time_s : float;
  r_probes : int;
  r_hits : int;
}

(** Immutable snapshot of all records in plan pre-order. *)
let report m : op_report list =
  List.rev_map
    (fun (_, s) ->
      {
        r_label = display_label s;
        r_opens = s.opens;
        r_calls = s.calls;
        r_rows = s.rows;
        r_time_s = s.time_s;
        r_probes = s.probes;
        r_hits = s.hits;
      })
    m.entries

(** Root operator's inclusive wall time, if anything ran. *)
let total_time_s m =
  match List.rev m.entries with
  | (_, root) :: _ -> root.time_s
  | [] -> 0.0

(** Cumulative audit-operator counters across the plan. *)
let audit_totals m =
  List.fold_left
    (fun (p, h) (_, s) -> (p + s.probes, h + s.hits))
    (0, 0) m.entries
