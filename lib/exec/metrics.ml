(** Per-operator execution metrics.

    When enabled, {!Executor.compile} registers one [op_stats] record per
    physical-plan node and wraps every cursor so each [getNext] call is
    counted and timed. The audit operator additionally records its
    probe/hit counters per instance, so EXPLAIN ANALYZE can show that an
    audit operator's input and output row counts are identical (the
    no-filtering invariant, §IV-A2) and exactly how many hash probes it
    charged the plan.

    Registration is keyed by *physical* identity of the {!Plan.Physical.t}
    node: the executor and the EXPLAIN ANALYZE renderer traverse the same
    immutable tree, so [find] recovers each node's record without any
    node-ID plumbing. Collection is off by default — the wrapper costs two
    clock reads per row — and is switched on per query by EXPLAIN ANALYZE,
    the benchmark harness, or {!Database.set_collect_metrics}. *)

type op_stats = {
  label : string;  (** physical operator name, e.g. [HashJoin] *)
  est_rows : float;  (** planner estimate recorded on the node *)
  mutable opens : int;  (** cursor opens; >1 under a correlated Apply *)
  mutable calls : int;  (** getNext invocations, across all opens *)
  mutable batches : int;  (** batches emitted (vectorized engine only) *)
  mutable rows : int;  (** rows emitted, across all opens *)
  mutable time_s : float;  (** cumulative wall time inside getNext *)
  mutable probes : int;  (** audit operators: hash probes issued *)
  mutable hits : int;  (** audit operators: probes finding a sensitive ID *)
}

type t = {
  mutable enabled : bool;
  mutable entries : (Plan.Physical.t * op_stats) list;
      (** registration (pre-)order, reversed; keyed by physical equality *)
}

let create () = { enabled = false; entries = [] }
let enabled m = m.enabled
let set_enabled m b = m.enabled <- b

(** Drop all records (fresh query). The enabled flag is kept. *)
let clear m = m.entries <- []

(* Monotonic source: operator timings and guard deadlines must never go
   backwards when NTP steps the wall clock. *)
let now_s () = Engine_core.Mono_clock.now ()

(* ------------------------------------------------------------------ *)
(* Registration and lookup                                             *)
(* ------------------------------------------------------------------ *)

let find m (node : Plan.Physical.t) : op_stats option =
  let rec go = function
    | [] -> None
    | (k, s) :: rest -> if k == node then Some s else go rest
  in
  go m.entries

(** Find-or-create the stats record for a physical-plan node. *)
let register m (node : Plan.Physical.t) : op_stats =
  match find m node with
  | Some s -> s
  | None ->
    let s =
      {
        label = Plan.Physical.label node;
        est_rows = node.Plan.Physical.est;
        opens = 0;
        calls = 0;
        batches = 0;
        rows = 0;
        time_s = 0.0;
        probes = 0;
        hits = 0;
      }
    in
    m.entries <- (node, s) :: m.entries;
    s

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type op_report = {
  r_label : string;
  r_est_rows : float;
  r_opens : int;
  r_calls : int;
  r_batches : int;
  r_rows : int;
  r_time_s : float;
  r_probes : int;
  r_hits : int;
}

(** Immutable snapshot of all records in plan pre-order. *)
let report m : op_report list =
  List.rev_map
    (fun (_, s) ->
      {
        r_label = s.label;
        r_est_rows = s.est_rows;
        r_opens = s.opens;
        r_calls = s.calls;
        r_batches = s.batches;
        r_rows = s.rows;
        r_time_s = s.time_s;
        r_probes = s.probes;
        r_hits = s.hits;
      })
    m.entries

(** Root operator's inclusive wall time, if anything ran. *)
let total_time_s m =
  match List.rev m.entries with
  | (_, root) :: _ -> root.time_s
  | [] -> 0.0

(** Cumulative audit-operator counters across the plan. *)
let audit_totals m =
  List.fold_left
    (fun (p, h) (_, s) -> (p + s.probes, h + s.hits))
    (0, 0) m.entries
