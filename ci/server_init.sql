CREATE TABLE patients (patientid INT PRIMARY KEY, name VARCHAR, age INT, zip INT);
INSERT INTO patients VALUES (1,'Alice',34,48109),(2,'Bob',22,48109),(3,'Carol',67,98052),(4,'Dave',45,98052),(5,'Eve',29,10001);
CREATE TABLE disease (patientid INT, disease VARCHAR);
INSERT INTO disease VALUES (1,'cancer'),(2,'flu'),(3,'flu'),(4,'cancer'),(5,'diabetes');
CREATE AUDIT EXPRESSION audit_alice AS SELECT * FROM patients WHERE name = 'Alice' FOR SENSITIVE TABLE patients, PARTITION BY patientid;
CREATE AUDIT EXPRESSION audit_all AS SELECT * FROM patients FOR SENSITIVE TABLE patients, PARTITION BY patientid;
CREATE TRIGGER watch_alice ON ACCESS TO audit_alice AS NOTIFY 'alice accessed';
CREATE TRIGGER watch_all ON ACCESS TO audit_all AS NOTIFY 'patients accessed';
