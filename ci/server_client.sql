SELECT * FROM patients;
SELECT name, age FROM patients WHERE age > 30;
SELECT p.name, d.disease FROM patients p, disease d WHERE p.patientid = d.patientid AND d.disease = 'cancer';
SELECT count(*) FROM patients;
SELECT * FROM patients WHERE name = 'Alice';
