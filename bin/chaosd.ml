(* chaosd — the network chaos proxy as a standalone daemon.

   Sits between wire-protocol clients and serverd, injecting seeded
   frame-level faults (drop, delay, truncate, sever) in both directions:

     chaosd --listen /tmp/chaos.sock --upstream /tmp/audit.sock --seed 7

   CI's chaos-smoke job points 8 retrying shell clients at chaosd and
   gates on walcheck's exactly-once check afterwards: however the proxy
   mangled the streams, every acknowledged statement must have exactly
   one durable evidence record. SIGTERM/SIGINT print a stats line
   (frames, faults by kind) and exit; CI greps it to prove the run
   actually injected faults. *)

let stop_requested = Atomic.make false

let log msg = Printf.printf "[chaosd] %s\n%!" msg

let parse_addr spec : Server.Daemon.listen =
  match String.rindex_opt spec ':' with
  | Some i -> (
    match
      int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
    with
    | Some port when port > 0 ->
      let host = String.sub spec 0 i in
      `Tcp ((if host = "" then "127.0.0.1" else host), port)
    | _ -> `Unix spec)
  | None -> `Unix spec

let main listen upstream seed drop delay delay_s truncate sever =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let spec =
    {
      Server.Chaos.p_drop = drop;
      p_delay = delay;
      delay_s;
      p_truncate = truncate;
      p_sever = sever;
    }
  in
  let t =
    Server.Chaos.start ~spec ~seed ~listen:(parse_addr listen)
      ~upstream:(parse_addr upstream) ()
  in
  log
    (Printf.sprintf
       "proxying %s -> %s (seed=%d drop=%.2f delay=%.2f/%.0fms trunc=%.2f \
        sever=%.2f)"
       listen upstream seed drop delay (delay_s *. 1000.0) truncate sever);
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_requested) do
    Thread.delay 0.2
  done;
  log "shutdown requested";
  Server.Chaos.stop t;
  let s = Server.Chaos.stats t in
  log
    (Printf.sprintf
       "stats: connections=%d frames=%d dropped=%d delayed=%d truncated=%d \
        severed=%d"
       s.Server.Chaos.s_connections s.Server.Chaos.s_frames
       s.Server.Chaos.s_dropped s.Server.Chaos.s_delayed
       s.Server.Chaos.s_truncated s.Server.Chaos.s_severed);
  0

open Cmdliner

let listen =
  let doc = "Listen for clients on $(docv) (socket path or HOST:PORT)." in
  Arg.(value & opt string "chaos.sock" & info [ "listen" ] ~docv:"ADDR" ~doc)

let upstream =
  let doc = "Forward to the serverd at $(docv) (socket path or HOST:PORT)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "upstream" ] ~docv:"ADDR" ~doc)

let seed =
  let doc = "Deterministic fault-schedule seed." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let prob name default doc =
  Arg.(value & opt float default & info [ name ] ~docv:"P" ~doc)

let drop = prob "drop" 0.05 "Per-frame probability of silently dropping it."
let delay = prob "delay" 0.08 "Per-frame probability of delaying it."

let delay_s =
  let doc = "Mean delay in seconds for delayed frames." in
  Arg.(value & opt float 0.02 & info [ "delay-s" ] ~docv:"S" ~doc)

let truncate =
  prob "truncate" 0.03
    "Per-frame probability of truncating it mid-byte and severing."

let sever =
  prob "sever" 0.03 "Per-frame probability of severing the connection."

let cmd =
  let doc = "seeded network chaos proxy for the audit wire protocol" in
  Cmd.v
    (Cmd.info "chaosd" ~doc)
    Term.(
      const main $ listen $ upstream $ seed $ drop $ delay $ delay_s
      $ truncate $ sever)

let () = exit (Cmd.eval' cmd)
