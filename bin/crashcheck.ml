(* Crash-recovery smoke test for the durable audit log.

   Exercises the WAL the way a real failure would, from a separate
   process, and checks the two recovery guarantees:

     1. No intact record is ever lost: after any simulated or real crash,
        reopening the log recovers exactly the records that were synced
        before the failure.
     2. A torn tail never poisons the log: recovery truncates it, and the
        log accepts appends again.

   Scenarios:
     - torn tail: a simulated crash-before-fsync leaves a half-written
       frame; recovery must keep the N synced records and truncate the rest
     - corruption: a bit flipped in a synced record's payload; recovery
       must keep the prefix before it, flag corruption, and truncate
     - real kill (POSIX fork): a child appends/syncs in a tight loop and
       is SIGKILLed mid-stream; every record the parent finds must be
       intact and the count must be within the child's progress
     - group commit: a child runs the WAL group-commit writer with four
       submitting threads, durably acking each submit that returned; the
       parent SIGKILLs it cold (landing anywhere, including between a
       batch's append and its fsync) and checks that every acked record
       was actually durable — group commit must not weaken the
       evidence-before-results invariant
     - rotation: a child appends into a segmented WAL with a tiny
       segment threshold (rotating every handful of records) and is
       SIGKILLed cold — frequently mid-rotation, between the seal fsync,
       the manifest checkpoint and the successor's creation. Recovery
       must keep every acked record, stay bounded (manifest + tail scan
       only, never the sealed segments), and accept appends again.

   Exit status 0 when every scenario holds, 1 otherwise. Usage:
     crashcheck [scratch-dir] [scenario...]
   with scenarios from: torn corrupt kill group rotate (default: all). *)

let scenario_names = [ "torn"; "corrupt"; "kill"; "group"; "rotate" ]

let scratch, selected =
  match List.tl (Array.to_list Sys.argv) with
  | [] -> ("_crash", scenario_names)
  | first :: rest ->
    if List.mem first scenario_names then ("_crash", first :: rest)
    else (first, if rest = [] then scenario_names else rest)

let failures = ref 0

let check name cond =
  if cond then Printf.printf "ok   - %s\n" name
  else begin
    incr failures;
    Printf.printf "FAIL - %s\n" name
  end

let fresh_path name =
  let p = Filename.concat scratch name in
  if Sys.file_exists p then Sys.remove p;
  p

let note i = Audit_log.Wal.Note (Printf.sprintf "record-%04d" i)

let write_n path n =
  let w, _ = Audit_log.Wal.open_ path in
  for i = 1 to n do
    Audit_log.Wal.append w (note i)
  done;
  Audit_log.Wal.sync w;
  Audit_log.Wal.close w

(* ------------------------------------------------------------------ *)
(* Scenario 1: simulated crash before fsync leaves a torn tail         *)
(* ------------------------------------------------------------------ *)

let torn_tail () =
  let path = fresh_path "torn.wal" in
  let n = 25 in
  write_n path n;
  let kit = Engine_core.Faultkit.create () in
  Engine_core.Faultkit.arm kit
    [
      Engine_core.Faultkit.Log_io
        { at = 1; fault = Engine_core.Faultkit.Crash_before_sync };
    ];
  let w, r0 = Audit_log.Wal.open_ ~faults:kit path in
  check "torn: clean reopen sees all synced records"
    (r0.Audit_log.Wal.valid_records = n && r0.Audit_log.Wal.truncated_bytes = 0);
  (match Audit_log.Wal.append w (note (n + 1)) with
  | () -> check "torn: simulated crash raised" false
  | exception Engine_core.Engine_error.Error (Engine_core.Engine_error.Log_io _)
    ->
    check "torn: simulated crash raised" true);
  check "torn: handle is dead after crash" (not (Audit_log.Wal.is_open w));
  let records, r = Audit_log.Wal.read_all path in
  check "torn: recovery keeps every synced record"
    (r.Audit_log.Wal.valid_records = n && List.length records = n);
  check "torn: recovery truncates the torn tail"
    (r.Audit_log.Wal.truncated_bytes > 0);
  check "torn: a short tail is not flagged as corruption"
    (not r.Audit_log.Wal.corrupt);
  (* The log must be usable again after recovery. *)
  let w2, r2 = Audit_log.Wal.open_ path in
  Audit_log.Wal.append w2 (note (n + 1));
  Audit_log.Wal.sync w2;
  Audit_log.Wal.close w2;
  let records2, _ = Audit_log.Wal.read_all path in
  check "torn: log accepts appends after recovery"
    (r2.Audit_log.Wal.valid_records = n && List.length records2 = n + 1)

(* ------------------------------------------------------------------ *)
(* Scenario 2: flipped byte in a synced record's payload               *)
(* ------------------------------------------------------------------ *)

let corruption () =
  let path = fresh_path "corrupt.wal" in
  let n = 25 in
  write_n path n;
  (* Flip one byte ~60% into the file: inside some record's payload. *)
  let size = (Unix.stat path).Unix.st_size in
  let pos = size * 6 / 10 in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let records, r = Audit_log.Wal.read_all path in
  check "corrupt: checksum failure detected" r.Audit_log.Wal.corrupt;
  check "corrupt: prefix before the flip survives"
    (r.Audit_log.Wal.valid_records > 0
    && r.Audit_log.Wal.valid_records < n
    && List.length records = r.Audit_log.Wal.valid_records);
  check "corrupt: tail after the flip is dropped"
    (r.Audit_log.Wal.truncated_bytes > 0);
  (* Recovery-on-open truncates; the log must then verify clean. *)
  let w, _ = Audit_log.Wal.open_ path in
  Audit_log.Wal.close w;
  let _, r2 = Audit_log.Wal.read_all path in
  check "corrupt: open-time recovery heals the log"
    ((not r2.Audit_log.Wal.corrupt)
    && r2.Audit_log.Wal.truncated_bytes = 0
    && r2.Audit_log.Wal.valid_records = r.Audit_log.Wal.valid_records)

(* ------------------------------------------------------------------ *)
(* Scenario 3: SIGKILL a child that is appending full-tilt             *)
(* ------------------------------------------------------------------ *)

let real_kill () =
  let path = fresh_path "killed.wal" in
  let total = 5000 in
  match Unix.fork () with
  | 0 ->
    (* Child: append and fsync every record, then idle so the parent's
       kill always lands (possibly mid-write on a slow run). *)
    let w, _ = Audit_log.Wal.open_ path in
    for i = 1 to total do
      Audit_log.Wal.append w (note i);
      Audit_log.Wal.sync w
    done;
    Unix.sleep 30;
    exit 0
  | pid ->
    (* Give the child time to write some records, then kill it cold. *)
    Unix.sleepf 0.25;
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    let records, r = Audit_log.Wal.read_all path in
    check "kill: every recovered record is intact"
      (not r.Audit_log.Wal.corrupt);
    check "kill: child made progress before dying"
      (r.Audit_log.Wal.valid_records > 0);
    check "kill: record payloads decode in order"
      (List.for_all2
         (fun rec_ i ->
           match rec_ with
           | Audit_log.Wal.Note s -> s = Printf.sprintf "record-%04d" i
           | _ -> false)
         records
         (List.init (List.length records) (fun i -> i + 1)));
    Printf.printf "# kill: recovered %d records, truncated %d bytes\n"
      r.Audit_log.Wal.valid_records r.Audit_log.Wal.truncated_bytes

(* ------------------------------------------------------------------ *)
(* Scenario 4: SIGKILL a group-commit writer under concurrent submits  *)
(* ------------------------------------------------------------------ *)

(* The invariant under test: [Group.submit] returning means the caller's
   records are durable. The child acks every returned submit to a side
   file (write + fsync, in that order), so after a cold kill the ack file
   is a lower bound on what must be recoverable from the WAL — even when
   the kill lands inside a flush, between the batch's append and its
   fsync. *)
let group_commit () =
  let path = fresh_path "group.wal" in
  let ack = fresh_path "group.ack" in
  let workers = 4 in
  match Unix.fork () with
  | 0 ->
    let w, _ = Audit_log.Wal.open_ path in
    let g = Audit_log.Wal.Group.create w in
    let afd =
      Unix.openfile ack [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let amu = Mutex.create () in
    let worker tid =
      let k = ref 0 in
      while true do
        incr k;
        let token = Printf.sprintf "g%d-%06d" tid !k in
        Audit_log.Wal.Group.submit g [ Audit_log.Wal.Note token ];
        (* submit returned → the record is durable; ack it durably too *)
        Mutex.lock amu;
        let line = token ^ "\n" in
        ignore (Unix.write_substring afd line 0 (String.length line));
        Unix.fsync afd;
        Mutex.unlock amu
      done
    in
    let ths = List.init workers (fun i -> Thread.create worker (i + 1)) in
    List.iter Thread.join ths;
    exit 0
  | pid ->
    Unix.sleepf 0.4;
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    let records, r = Audit_log.Wal.read_all path in
    check "group: no corruption after SIGKILL" (not r.Audit_log.Wal.corrupt);
    let durable = Hashtbl.create 1024 in
    List.iter
      (function
        | Audit_log.Wal.Note s -> Hashtbl.replace durable s ()
        | _ -> ())
      records;
    let acked =
      if not (Sys.file_exists ack) then []
      else begin
        let ic = open_in ack in
        let n = in_channel_length ic in
        let content = really_input_string ic n in
        close_in ic;
        (* Only complete lines: the kill may have torn the last write. *)
        let upto =
          match String.rindex_opt content '\n' with
          | Some i -> String.sub content 0 i
          | None -> ""
        in
        if upto = "" then []
        else String.split_on_char '\n' upto
      end
    in
    check "group: child made progress before dying" (acked <> []);
    let missing =
      List.filter (fun t -> not (Hashtbl.mem durable t)) acked
    in
    if missing <> [] then
      List.iter (Printf.printf "# group: acked but not durable: %s\n") missing;
    check "group: every acked submit is durable in the WAL" (missing = []);
    Printf.printf "# group: %d records recovered, %d acked, truncated %d bytes\n"
      r.Audit_log.Wal.valid_records (List.length acked)
      r.Audit_log.Wal.truncated_bytes;
    (* Normal recovery applies: reopen, append, sync. *)
    let w2, _ = Audit_log.Wal.open_ path in
    Audit_log.Wal.append w2 (note 1);
    Audit_log.Wal.sync w2;
    Audit_log.Wal.close w2;
    let _, r2 = Audit_log.Wal.read_all path in
    check "group: log accepts appends after recovery"
      ((not r2.Audit_log.Wal.corrupt) && r2.Audit_log.Wal.truncated_bytes = 0)

(* ------------------------------------------------------------------ *)
(* Scenario 5: SIGKILL during segment rotation                         *)
(* ------------------------------------------------------------------ *)

(* With a ~0.5 KiB threshold the child rotates every handful of records,
   so a cold kill lands inside rotation's window (seal fsync → manifest
   checkpoint → successor creation) with high probability. Acks are the
   durable lower bound, exactly as in the group scenario. *)
let rotation_kill () =
  let path = fresh_path "rotate.wal" in
  (* Clear any segment/manifest debris from a previous run. *)
  Array.iter
    (fun f ->
      if
        String.length f >= 10
        && String.sub f 0 10 = "rotate"
      then try Sys.remove (Filename.concat scratch f) with _ -> ())
    (try Sys.readdir scratch with _ -> [||]);
  let ack = fresh_path "rotate.ack" in
  match Unix.fork () with
  | 0 ->
    let w, _ = Audit_log.Wal.open_ ~max_segment_size:512 path in
    let afd =
      Unix.openfile ack [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let i = ref 0 in
    while true do
      incr i;
      Audit_log.Wal.append w (note !i);
      Audit_log.Wal.sync w;
      let line = Printf.sprintf "record-%04d\n" !i in
      ignore (Unix.write_substring afd line 0 (String.length line));
      Unix.fsync afd
    done;
    exit 0
  | pid ->
    Unix.sleepf 0.3;
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    let records, r = Audit_log.Wal.read_all path in
    check "rotate: no corruption after SIGKILL" (not r.Audit_log.Wal.corrupt);
    check "rotate: the child actually rotated" (r.Audit_log.Wal.segments > 1);
    let durable = Hashtbl.create 1024 in
    List.iter
      (function
        | Audit_log.Wal.Note s -> Hashtbl.replace durable s ()
        | _ -> ())
      records;
    let acked =
      if not (Sys.file_exists ack) then []
      else begin
        let ic = open_in ack in
        let n = in_channel_length ic in
        let content = really_input_string ic n in
        close_in ic;
        let upto =
          match String.rindex_opt content '\n' with
          | Some i -> String.sub content 0 i
          | None -> ""
        in
        if upto = "" then [] else String.split_on_char '\n' upto
      end
    in
    check "rotate: child made progress before dying" (acked <> []);
    let missing = List.filter (fun t -> not (Hashtbl.mem durable t)) acked in
    if missing <> [] then
      List.iter (Printf.printf "# rotate: acked but not durable: %s\n") missing;
    check "rotate: every acked record survives the kill" (missing = []);
    (* Bounded recovery: reopening scans the manifest and tail segment
       only — sealed segments are never re-read. *)
    let w2, r2 = Audit_log.Wal.open_ path in
    check "rotate: reopen selects segmented mode via the manifest"
      (Audit_log.Wal.is_segmented w2);
    let total_bytes = ref 0 in
    for s = 0 to r2.Audit_log.Wal.segments - 1 do
      let p = Audit_log.Wal.segment_path path s in
      if Sys.file_exists p then
        total_bytes := !total_bytes + (Unix.stat p).Unix.st_size
    done;
    check "rotate: recovery is bounded to the tail segment"
      (r2.Audit_log.Wal.segments > 1
      && r2.Audit_log.Wal.scanned_bytes < !total_bytes);
    Audit_log.Wal.append w2 (Audit_log.Wal.Note "post-recovery");
    Audit_log.Wal.sync w2;
    Audit_log.Wal.close w2;
    let records3, r3 = Audit_log.Wal.read_all path in
    check "rotate: log accepts appends after recovery"
      ((not r3.Audit_log.Wal.corrupt)
      && List.length records3 = List.length records + 1);
    Printf.printf
      "# rotate: %d records over %d segments, scanned %d of %d bytes\n"
      r3.Audit_log.Wal.valid_records r3.Audit_log.Wal.segments
      r2.Audit_log.Wal.scanned_bytes !total_bytes

let needs_fork f name =
  try f ()
  with Unix.Unix_error _ ->
    (* fork unavailable (restricted sandbox): the simulated scenarios
       already cover recovery *)
    Printf.printf "# %s: skipped (fork unavailable)\n" name

let () =
  if not (Sys.file_exists scratch) then Unix.mkdir scratch 0o755;
  List.iter
    (function
      | "torn" -> torn_tail ()
      | "corrupt" -> corruption ()
      | "kill" -> needs_fork real_kill "kill"
      | "group" -> needs_fork group_commit "group"
      | "rotate" -> needs_fork rotation_kill "rotate"
      | s ->
        incr failures;
        Printf.printf "FAIL - unknown scenario %s\n" s)
    selected;
  if !failures = 0 then print_endline "crashcheck: all scenarios passed"
  else Printf.printf "crashcheck: %d check(s) FAILED\n" !failures;
  exit (if !failures = 0 then 0 else 1)
