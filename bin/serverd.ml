(* serverd — the audit engine as a daemon.

   Listens on a Unix-domain socket (or TCP), serves the shell's
   statement surface over the length-prefixed wire protocol, and owns
   the durable audit log: every session's ACCESSED/trigger evidence is
   group-committed — batched across concurrent sessions into shared
   fsyncs — while each statement's results are withheld until its
   records are durable.

     serverd --socket /tmp/audit.sock --wal audit.wal --init schema.sql
     serverd --tcp 127.0.0.1:7878 --wal audit.wal --policy open

   SIGTERM/SIGINT trigger a clean shutdown: in-flight statements finish,
   the WAL drains, and a final stats line (sessions, statements, group
   batches, fsyncs) is printed — CI greps it. *)

let stop_requested = Atomic.make false

let log msg =
  Printf.printf "[serverd] %s\n%!" msg

let run_init db path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  let results = Db.Database.exec_script db content in
  log (Printf.sprintf "init script %s: %d statements" path (List.length results))

let parse_tcp spec =
  match String.rindex_opt spec ':' with
  | None -> None
  | Some i -> (
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 -> Some (`Tcp ((if host = "" then "127.0.0.1" else host), p))
    | _ -> None)

let main socket tcp wal policy_open max_segment_size storage exec elide init
    tpch max_clients max_waiting statement_timeout =
  let listen =
    match tcp with
    | Some spec -> (
      match parse_tcp spec with
      | Some l -> l
      | None ->
        prerr_endline "serverd: --tcp expects HOST:PORT";
        exit 2)
    | None -> `Unix socket
  in
  let db = Db.Database.create () in
  (* Before --tpch/--init so preloaded tables get the requested layout. *)
  (match storage with
  | Some s -> (
    match Storage.Table.storage_of_string s with
    | Some st ->
      Db.Database.set_storage_mode db st;
      log (Printf.sprintf "storage mode %s" s)
    | None ->
      prerr_endline "serverd: --storage expects heap or columnar";
      exit 2)
  | None -> ());
  (match exec with
  | Some m -> (
    match String.lowercase_ascii m with
    | "row" -> Db.Database.set_exec_mode db `Row
    | "batch" ->
      Db.Database.set_exec_mode db `Batch;
      log "exec mode batch"
    | "compiled" ->
      Db.Database.set_exec_mode db `Compiled;
      log "exec mode compiled"
    | _ ->
      prerr_endline "serverd: --exec expects row, batch or compiled";
      exit 2)
  | None -> ());
  if elide then begin
    Db.Database.set_elision_mode db Db.Database.Elide_certified;
    log "certified probe elision on"
  end;
  (match tpch with
  | Some sf ->
    let sizes = Tpch.Dbgen.load db ~sf in
    log
      (Printf.sprintf "loaded TPC-H sf=%g: %d customers, %d orders" sf
         sizes.Tpch.Dbgen.customers sizes.Tpch.Dbgen.orders)
  | None -> ());
  (match init with
  | Some path -> (
    try run_init db path
    with e ->
      Printf.eprintf "serverd: init script failed: %s\n" (Printexc.to_string e);
      exit 1)
  | None -> ());
  let cfg =
    Server.Daemon.config ~wal_path:wal
      ~wal_policy:
        (if policy_open then Audit_log.Wal.Fail_open
         else Audit_log.Wal.Fail_closed)
      ?max_segment_size ~max_clients ~max_waiting
      ?statement_timeout_s:statement_timeout ~log listen
  in
  let t = Server.Daemon.start ~root:db cfg in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_requested) do
    Thread.delay 0.2
  done;
  log "shutdown requested";
  Server.Daemon.stop t;
  let s = Server.Daemon.stats t in
  (match s.Server.Daemon.group with
  | Some g ->
    log
      (Printf.sprintf
         "stats: sessions=%d statements=%d shed=%d replayed=%d records=%d \
          batches=%d fsyncs=%d max_batch=%d"
         s.Server.Daemon.sessions_opened s.Server.Daemon.statements_served
         s.Server.Daemon.statements_shed s.Server.Daemon.statements_replayed
         g.Audit_log.Wal.Group.s_records g.Audit_log.Wal.Group.s_batches
         g.Audit_log.Wal.Group.s_fsyncs g.Audit_log.Wal.Group.s_max_batch)
  | None ->
    log
      (Printf.sprintf "stats: sessions=%d statements=%d (no audit log)"
         s.Server.Daemon.sessions_opened s.Server.Daemon.statements_served));
  0

open Cmdliner

let socket =
  let doc = "Listen on the Unix-domain socket $(docv)." in
  Arg.(
    value
    & opt string "serverd.sock"
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc)

let tcp =
  let doc = "Listen on TCP $(docv) (HOST:PORT) instead of a Unix socket." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"ADDR" ~doc)

let wal =
  let doc =
    "Durable audit log path. Evidence from every session is group-committed \
     here; without it the server runs unaudited."
  in
  Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"PATH" ~doc)

let policy_open =
  let doc =
    "Fail-open audit policy: a failed log write raises an alarm but results \
     flow (default is fail-closed: results are withheld)."
  in
  Arg.(value & flag & info [ "fail-open" ] ~doc)

let storage =
  let doc =
    "Storage engine for tables the server creates ($(docv) is heap or \
     columnar; default follows the STORAGE environment variable)."
  in
  Arg.(value & opt (some string) None & info [ "storage" ] ~docv:"MODE" ~doc)

let exec =
  let doc =
    "Execution engine for every served session ($(docv) is row, batch or \
     compiled; default follows the EXEC_MODE environment variable)."
  in
  Arg.(value & opt (some string) None & info [ "exec" ] ~docv:"MODE" ~doc)

let elide =
  let doc =
    "Certified probe elision: statically analyze every plan for \
     trigger–query independence and strip audit probes whose certificate \
     replays (default follows the ELISION environment variable)."
  in
  Arg.(value & flag & info [ "elide" ] ~doc)

let init =
  let doc = "Execute the SQL script $(docv) before accepting connections." in
  Arg.(value & opt (some file) None & info [ "init" ] ~docv:"FILE" ~doc)

let tpch =
  let doc = "Preload the TPC-H benchmark at scale factor $(docv)." in
  Arg.(value & opt (some float) None & info [ "tpch" ] ~docv:"SF" ~doc)

let max_clients =
  let doc = "Refuse connections beyond $(docv) concurrent clients." in
  Arg.(value & opt int 64 & info [ "max-clients" ] ~docv:"N" ~doc)

let max_segment_size =
  let doc =
    "Segment the audit log, rotating the active segment past $(docv) bytes. \
     Recovery then replays only the manifest and the tail segment (bounded), \
     and ENOSPC degrades by rotating before the policy kicks in."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "max-segment-size" ] ~docv:"BYTES" ~doc)

let max_waiting =
  let doc =
    "Admission-control threshold: shed statements with a typed Overloaded \
     (retry-after) response once $(docv) statements are queued for \
     execution."
  in
  Arg.(value & opt int 32 & info [ "max-waiting" ] ~docv:"N" ~doc)

let statement_timeout =
  let doc =
    "Server-wide per-statement deadline in seconds (caps each session's own \
     timeout)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "statement-timeout" ] ~docv:"SECONDS" ~doc)

let cmd =
  let doc = "audit server daemon with WAL group commit" in
  Cmd.v
    (Cmd.info "serverd" ~doc)
    Term.(
      const main $ socket $ tcp $ wal $ policy_open $ max_segment_size
      $ storage $ exec $ elide $ init $ tpch $ max_clients $ max_waiting
      $ statement_timeout)

let () = exit (Cmd.eval' cmd)
