(* walcheck — inspect and assert over a durable audit log.

   CI's evidence gate: after the server smoke test shuts serverd down,
   walcheck proves every client's ACCESSED evidence actually reached the
   log, from distinct sessions, with no torn tail. Segmented logs (a
   manifest is present next to the base path) are read in full — every
   sealed segment plus the tail — so offline audits always cover the
   complete history.

   Usage:
     walcheck <path> [options]
       --dump                  print every record
       --json                  emit the summary as JSON on stdout
       --require-users A,B,..  each user must have >= 1 complete ACCESSED
                               record
       --require-sessions N    evidence must come from >= N distinct
                               sessions
       --min-records N         total record count floor
       --min-segments N        the log must span >= N segment files
       --clean                 no corruption and no truncated tail
       --exactly-once          no duplicate (session, seq, audit) ACCESSED
                               evidence — the retry/exactly-once gate

   Duplicates are always counted and reported; --exactly-once turns a
   non-zero count into a failure. Exit status 0 when every assertion
   holds, 1 otherwise, 2 on usage. *)

module Wal = Audit_log.Wal
module Json = Benchkit.Json

let usage () =
  prerr_endline
    "usage: walcheck <path> [--dump] [--json] [--require-users A,B] \
     [--require-sessions N] [--min-records N] [--min-segments N] [--clean] \
     [--exactly-once]";
  exit 2

let () =
  let path = ref None in
  let dump = ref false in
  let json = ref false in
  let require_users = ref [] in
  let require_sessions = ref 0 in
  let min_records = ref 0 in
  let min_segments = ref 0 in
  let clean = ref false in
  let exactly_once = ref false in
  let rec parse = function
    | [] -> ()
    | "--dump" :: rest ->
      dump := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--require-users" :: users :: rest ->
      require_users := String.split_on_char ',' users;
      parse rest
    | "--require-sessions" :: n :: rest ->
      (match int_of_string_opt n with Some k -> require_sessions := k | None -> usage ());
      parse rest
    | "--min-records" :: n :: rest ->
      (match int_of_string_opt n with Some k -> min_records := k | None -> usage ());
      parse rest
    | "--min-segments" :: n :: rest ->
      (match int_of_string_opt n with Some k -> min_segments := k | None -> usage ());
      parse rest
    | "--clean" :: rest ->
      clean := true;
      parse rest
    | "--exactly-once" :: rest ->
      exactly_once := true;
      parse rest
    | arg :: rest when !path = None && String.length arg > 0 && arg.[0] <> '-'
      ->
      path := Some arg;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path = match !path with Some p -> p | None -> usage () in
  let records, r = Wal.read_all path in
  if !dump then
    List.iter (fun rec_ -> print_endline (Wal.record_to_string rec_)) records;
  let sessions = Hashtbl.create 16 in
  let accessed_users = Hashtbl.create 16 in
  let evidence_keys = Hashtbl.create 64 in
  let duplicates = ref [] in
  let accessed = ref 0 and fired = ref 0 and notes = ref 0 in
  List.iter
    (fun rec_ ->
      (match Wal.record_session rec_ with
      | Some s -> Hashtbl.replace sessions s ()
      | None -> ());
      match rec_ with
      | Wal.Accessed { session; seq; user; audit; complete; _ } ->
        incr accessed;
        if complete then Hashtbl.replace accessed_users user ();
        (* Exactly-once key: one complete ACCESSED record per statement
           per audit expression. A duplicate means a statement executed
           (and logged) twice — the invariant the retry layer protects. *)
        if complete then begin
          let key = (session, seq, audit) in
          if Hashtbl.mem evidence_keys key then duplicates := key :: !duplicates
          else Hashtbl.add evidence_keys key ()
        end
      | Wal.Trigger_fired _ -> incr fired
      | Wal.Notify _ -> ()
      | Wal.Note _ -> incr notes
      | Wal.Checkpoint _ -> ())
    records;
  let duplicates = List.rev !duplicates in
  let failures = ref 0 in
  let checks = ref [] in
  let check name cond =
    checks := (name, cond) :: !checks;
    if not cond then incr failures
  in
  List.iter
    (fun u ->
      check
        (Printf.sprintf "complete ACCESSED evidence for user %s" u)
        (Hashtbl.mem accessed_users u))
    !require_users;
  if !require_sessions > 0 then
    check
      (Printf.sprintf "evidence from >= %d distinct sessions" !require_sessions)
      (Hashtbl.length sessions >= !require_sessions);
  if !min_records > 0 then
    check
      (Printf.sprintf ">= %d records" !min_records)
      (List.length records >= !min_records);
  if !min_segments > 0 then
    check
      (Printf.sprintf ">= %d segments" !min_segments)
      (r.Wal.segments >= !min_segments);
  if !clean then begin
    check "no corruption" (not r.Wal.corrupt);
    check "no truncated tail" (r.Wal.truncated_bytes = 0)
  end;
  if !exactly_once then
    check "no duplicate (session, seq, audit) evidence" (duplicates = []);
  let checks = List.rev !checks in
  if !json then begin
    let open Json in
    print_endline
      (to_string
         (Obj
            [
              ("path", Str path);
              ("records", Int (List.length records));
              ("accessed", Int !accessed);
              ("trigger_firings", Int !fired);
              ("notes", Int !notes);
              ("sessions", Int (Hashtbl.length sessions));
              ("segments", Int r.Wal.segments);
              ("tail_segment", Int r.Wal.tail_segment);
              ("valid_bytes", Int r.Wal.valid_bytes);
              ("scanned_bytes", Int r.Wal.scanned_bytes);
              ("truncated_bytes", Int r.Wal.truncated_bytes);
              ("corrupt", Bool r.Wal.corrupt);
              ( "duplicate_evidence",
                List
                  (List.map
                     (fun (s, q, a) ->
                       Obj
                         [
                           ("session", Int s); ("seq", Int q); ("audit", Str a);
                         ])
                     duplicates) );
              ( "checks",
                List
                  (List.map
                     (fun (name, ok) ->
                       Obj [ ("name", Str name); ("ok", Bool ok) ])
                     checks) );
              ("ok", Bool (!failures = 0));
            ]))
  end
  else begin
    Printf.printf
      "walcheck %s: %d records (%d accessed, %d trigger firings, %d notes), \
       %d sessions, %d segments, %d bytes truncated, %d duplicates%s\n"
      path (List.length records) !accessed !fired !notes
      (Hashtbl.length sessions) r.Wal.segments r.Wal.truncated_bytes
      (List.length duplicates)
      (if r.Wal.corrupt then ", CORRUPT" else "");
    List.iter
      (fun (name, ok) ->
        Printf.printf "%s - %s\n" (if ok then "ok  " else "FAIL") name)
      checks
  end;
  exit (if !failures = 0 then 0 else 1)
