(* walcheck — inspect and assert over a durable audit log.

   CI's evidence gate: after the server smoke test shuts serverd down,
   walcheck proves every client's ACCESSED evidence actually reached the
   log, from distinct sessions, with no torn tail.

   Usage:
     walcheck <path> [options]
       --dump                  print every record
       --require-users A,B,..  each user must have >= 1 complete ACCESSED
                               record
       --require-sessions N    evidence must come from >= N distinct
                               sessions
       --min-records N         total record count floor
       --clean                 no corruption and no truncated tail

   Exit status 0 when every assertion holds, 1 otherwise, 2 on usage. *)

module Wal = Audit_log.Wal

let usage () =
  prerr_endline
    "usage: walcheck <path> [--dump] [--require-users A,B] \
     [--require-sessions N] [--min-records N] [--clean]";
  exit 2

let () =
  let path = ref None in
  let dump = ref false in
  let require_users = ref [] in
  let require_sessions = ref 0 in
  let min_records = ref 0 in
  let clean = ref false in
  let rec parse = function
    | [] -> ()
    | "--dump" :: rest ->
      dump := true;
      parse rest
    | "--require-users" :: users :: rest ->
      require_users := String.split_on_char ',' users;
      parse rest
    | "--require-sessions" :: n :: rest ->
      (match int_of_string_opt n with Some k -> require_sessions := k | None -> usage ());
      parse rest
    | "--min-records" :: n :: rest ->
      (match int_of_string_opt n with Some k -> min_records := k | None -> usage ());
      parse rest
    | "--clean" :: rest ->
      clean := true;
      parse rest
    | arg :: rest when !path = None && String.length arg > 0 && arg.[0] <> '-'
      ->
      path := Some arg;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path = match !path with Some p -> p | None -> usage () in
  let records, r = Wal.read_all path in
  if !dump then
    List.iter (fun rec_ -> print_endline (Wal.record_to_string rec_)) records;
  let sessions = Hashtbl.create 16 in
  let accessed_users = Hashtbl.create 16 in
  let accessed = ref 0 and fired = ref 0 and notes = ref 0 in
  List.iter
    (fun rec_ ->
      (match Wal.record_session rec_ with
      | Some s -> Hashtbl.replace sessions s ()
      | None -> ());
      match rec_ with
      | Wal.Accessed { user; complete; _ } ->
        incr accessed;
        if complete then Hashtbl.replace accessed_users user ()
      | Wal.Trigger_fired _ -> incr fired
      | Wal.Notify _ -> ()
      | Wal.Note _ -> incr notes)
    records;
  Printf.printf
    "walcheck %s: %d records (%d accessed, %d trigger firings, %d notes), %d \
     sessions, %d bytes truncated%s\n"
    path (List.length records) !accessed !fired !notes
    (Hashtbl.length sessions) r.Wal.truncated_bytes
    (if r.Wal.corrupt then ", CORRUPT" else "");
  let failures = ref 0 in
  let check name cond =
    if cond then Printf.printf "ok   - %s\n" name
    else begin
      incr failures;
      Printf.printf "FAIL - %s\n" name
    end
  in
  List.iter
    (fun u ->
      check
        (Printf.sprintf "complete ACCESSED evidence for user %s" u)
        (Hashtbl.mem accessed_users u))
    !require_users;
  if !require_sessions > 0 then
    check
      (Printf.sprintf "evidence from >= %d distinct sessions" !require_sessions)
      (Hashtbl.length sessions >= !require_sessions);
  if !min_records > 0 then
    check
      (Printf.sprintf ">= %d records" !min_records)
      (List.length records >= !min_records);
  if !clean then begin
    check "no corruption" (not r.Wal.corrupt);
    check "no truncated tail" (r.Wal.truncated_bytes = 0)
  end;
  exit (if !failures = 0 then 0 else 1)
