(* Interactive SQL shell with SELECT triggers.

   Statements end with ';'. Backslash commands:
     \q                     quit
     \tables                list tables
     \audits                list audit expressions
     \triggers              list triggers
     \notifications         show (and clear) NOTIFY output
     \accessed              ACCESSED state of the last SELECT
     \plan <sql>            show the instrumented plan for a query
     \analyze <sql>         EXPLAIN ANALYZE: run the query, show the plan
                            annotated with actual row counts and timings
     \dump [file]           SQL dump of the database (to stdout or file)
     \heuristic <h>         leaf | hcn | highest
     \user <name>           set session user
     \tpch <sf>             load the TPC-H benchmark at scale factor <sf>
*)

let usage_commands =
  "commands: \\q \\tables \\audits \\triggers \\notifications \\accessed \
   \\plan <sql> \\analyze <sql> \\dump [file] \\heuristic <leaf|hcn|highest> \
   \\user <name> \\tpch <sf>"

let print_result r = print_endline (Db.Database.result_to_string r)

let handle_command db line =
  let parts = String.split_on_char ' ' (String.trim line) in
  match parts with
  | [ "\\q" ] -> raise Exit
  | [ "\\tables" ] ->
    List.iter print_endline (Storage.Catalog.names (Db.Database.catalog db))
  | [ "\\audits" ] ->
    List.iter
      (fun n ->
        let v = Db.Database.audit_view db n in
        Printf.printf "%s (%d sensitive IDs)\n" n
          (Audit_core.Sensitive_view.cardinality v))
      (Db.Database.audit_names db)
  | [ "\\triggers" ] ->
    List.iter
      (fun (t : Audit_core.Trigger.t) ->
        let ev =
          match t.Audit_core.Trigger.event with
          | Sql.Ast.On_access a -> "ON ACCESS TO " ^ a
          | Sql.Ast.On_dml (tb, e) ->
            Printf.sprintf "ON %s AFTER %s" tb
              (match e with
              | Sql.Ast.Ev_insert -> "INSERT"
              | Sql.Ast.Ev_update -> "UPDATE"
              | Sql.Ast.Ev_delete -> "DELETE")
        in
        Printf.printf "%s %s\n" t.Audit_core.Trigger.name ev)
      (Audit_core.Trigger.all (Db.Database.trigger_manager db))
  | [ "\\notifications" ] ->
    List.iter print_endline (Db.Database.notifications db);
    Db.Database.clear_notifications db
  | [ "\\accessed" ] ->
    List.iter
      (fun (audit, ids) ->
        Printf.printf "%s: %s\n" audit
          (String.concat ", " (List.map Storage.Value.to_string ids)))
      (Db.Database.last_accessed db)
  | "\\dump" :: rest ->
    let text = Db.Database.dump db in
    (match rest with
    | [] -> print_string text
    | path :: _ ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "dumped to %s\n" path)
  | "\\plan" :: rest ->
    let sql = String.concat " " rest in
    let plan = Db.Database.plan_sql db sql in
    print_string (Plan.Logical.to_string plan)
  | "\\analyze" :: rest -> (
    let sql = String.concat " " rest in
    match Db.Database.exec db ("EXPLAIN ANALYZE " ^ sql) with
    | r -> print_result r
    | exception Db.Database.Db_error m -> Printf.printf "error: %s\n" m)
  | [ "\\heuristic"; h ] -> (
    match String.lowercase_ascii h with
    | "leaf" -> Db.Database.set_heuristic db Audit_core.Placement.Leaf
    | "hcn" -> Db.Database.set_heuristic db Audit_core.Placement.Hcn
    | "highest" -> Db.Database.set_heuristic db Audit_core.Placement.Highest
    | _ -> print_endline "unknown heuristic (leaf | hcn | highest)")
  | [ "\\user"; u ] -> Db.Database.set_user db u
  | [ "\\tpch"; sf ] -> (
    match float_of_string_opt sf with
    | Some sf ->
      let sizes = Tpch.Dbgen.load db ~sf in
      Printf.printf "loaded TPC-H sf=%g: %d customers, %d orders\n" sf
        sizes.Tpch.Dbgen.customers sizes.Tpch.Dbgen.orders
    | None -> print_endline "usage: \\tpch <scale factor>")
  | _ -> print_endline usage_commands

let repl db =
  let buf = Buffer.create 256 in
  print_endline "select_triggers shell — SQL statements end with ';'";
  print_endline usage_commands;
  try
    while true do
      print_string (if Buffer.length buf = 0 then "sql> " else "  -> ");
      let line = try read_line () with End_of_file -> raise Exit in
      let trimmed = String.trim line in
      if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '\\'
      then (try handle_command db trimmed with Exit -> raise Exit)
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.length trimmed > 0
           && trimmed.[String.length trimmed - 1] = ';' then begin
          let sql = Buffer.contents buf in
          Buffer.clear buf;
          match Db.Database.exec db sql with
          | r -> print_result r
          | exception Db.Database.Db_error m -> Printf.printf "error: %s\n" m
        end
      end
    done
  with Exit -> print_endline "bye"

let run_file db path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  match Db.Database.exec_script db content with
  | results -> List.iter print_result results
  | exception Db.Database.Db_error m ->
    Printf.printf "error: %s\n" m;
    exit 1

let main file tpch_sf =
  let db = Db.Database.create () in
  (match tpch_sf with
  | Some sf ->
    let sizes = Tpch.Dbgen.load db ~sf in
    Printf.printf "loaded TPC-H sf=%g: %d customers, %d orders\n%!" sf
      sizes.Tpch.Dbgen.customers sizes.Tpch.Dbgen.orders
  | None -> ());
  match file with Some path -> run_file db path | None -> repl db

open Cmdliner

let file =
  let doc = "Execute the SQL script $(docv) and exit (instead of the REPL)." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let tpch =
  let doc = "Preload the TPC-H benchmark at scale factor $(docv)." in
  Arg.(value & opt (some float) None & info [ "tpch" ] ~docv:"SF" ~doc)

let cmd =
  let doc = "interactive SQL shell with SELECT triggers for data auditing" in
  Cmd.v
    (Cmd.info "shell" ~doc)
    Term.(const main $ file $ tpch)

let () = exit (Cmd.eval cmd)
