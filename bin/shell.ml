(* Interactive SQL shell with SELECT triggers.

   Statements end with ';'. Backslash commands:
     \q                     quit
     \tables                list tables
     \audits                list audit expressions
     \triggers              list triggers
     \notifications         show (and clear) NOTIFY output
     \accessed              ACCESSED state of the last SELECT
     \plan <sql>            show the instrumented plan for a query
     \analyze <sql>         EXPLAIN ANALYZE: run the query, show the plan
                            annotated with actual row counts and timings
     \verify <sql>          run the plan-invariant verifier: rule-by-rule
                            pass/violation report plus elision certificate
                            summaries, nothing is executed
     \verify mode <off|warn|strict>   verification policy for statements
     \elide [off|certified] select (or show) certified probe elision:
                            strip audit probes proven independent of every
                            trigger by the static analysis
     \dump [file]           SQL dump of the database (to stdout or file)
     \heuristic <h>         leaf | hcn | highest
     \exec [row|batch|compiled]   select (or show) the execution engine:
                            tuple-at-a-time, vectorized batches, or
                            push-based compiled pipelines
     \storage [heap|columnar]   select (or show) the storage engine for
                            tables created from now on
     \user <name>           set session user
     \tpch <sf>             load the TPC-H benchmark at scale factor <sf>
     \log open <path> [closed|open]   attach the durable audit log
     \log policy <closed|open>        fail-closed vs fail-open-with-alarm
     \log dump | status | close      inspect / detach the audit log
     \timeout <s|off>       per-query wall-clock budget
     \budget rows|mem <n|off>        per-query scan / materialization budget
     \alarms                show (and clear) robustness alarms
     \fault ...             arm deterministic faults (see \fault help)

   Every statement and command is dispatched inside an error guard: parse,
   bind and execution errors, access denials, guard cancellations and
   injected faults print a structured `error:` line and the session keeps
   going. *)

let usage_commands =
  "commands: \\q \\tables \\audits \\triggers \\notifications \\accessed \
   \\plan <sql> \\analyze <sql> \\verify <sql|mode <off|warn|strict>> \
   \\dump [file] \\heuristic <leaf|hcn|highest> \\exec [row|batch|compiled] \
   \\storage [heap|columnar] \\elide [off|certified] \\user <name> \\tpch <sf> \
   \\log <open|policy|dump|status|close> \
   \\timeout <s|off> \\budget <rows|mem> <n|off> \\alarms \\fault <...>"

let fault_usage =
  "usage: \\fault                      show the armed plan and fired points\n\
  \       \\fault op <n> <label>       fail the n-th getNext of operators\n\
  \                                   matching <label> (substring, * = any)\n\
  \       \\fault log <short|enospc|crash> [n]   fail the n-th log append\n\
  \       \\fault trigger <name>       fail on entry to a trigger body\n\
  \       \\fault seed <k>             arm the seeded random plan k\n\
  \       \\fault off                  disarm"

let print_result r = print_endline (Db.Database.result_to_string r)

let report_error = function
  | Db.Database.Db_error m -> Printf.printf "error: %s\n" m
  | Db.Database.Access_denied m -> Printf.printf "error: access denied: %s\n" m
  | Engine_core.Engine_error.Error e ->
    Printf.printf "error: %s\n" (Engine_core.Engine_error.to_string e)
  | Engine_core.Faultkit.Fault_injected m ->
    Printf.printf "error: injected fault: %s\n" m
  | Exec.Executor.Exec_error m ->
    Printf.printf "error: execution error: %s\n" m
  | Sys_error m -> Printf.printf "error: %s\n" m
  | e -> Printf.printf "error: unexpected: %s\n" (Printexc.to_string e)

(* Faults already armed accumulate: each \fault command appends a point. *)
let fault_points : Engine_core.Faultkit.point list ref = ref []

let arm_faults db points =
  fault_points := points;
  Engine_core.Faultkit.arm (Db.Database.faults db) points;
  match points with
  | [] -> print_endline "faults disarmed"
  | ps ->
    List.iter
      (fun p ->
        Printf.printf "armed: %s\n" (Engine_core.Faultkit.point_to_string p))
      ps

let handle_fault db args =
  let kit = Db.Database.faults db in
  match args with
  | [] ->
    List.iter
      (fun p ->
        Printf.printf "armed: %s\n" (Engine_core.Faultkit.point_to_string p))
      (Engine_core.Faultkit.armed_points kit);
    List.iter
      (fun s -> Printf.printf "fired: %s\n" s)
      (Engine_core.Faultkit.fired kit)
  | [ "off" ] -> arm_faults db []
  | "op" :: n :: label when label <> [] -> (
    match int_of_string_opt n with
    | Some at ->
      arm_faults db
        (!fault_points
        @ [ Engine_core.Faultkit.Op_next { op = String.concat " " label; at } ])
    | None -> print_endline fault_usage)
  | "log" :: kind :: rest -> (
    let at =
      match rest with
      | [ n ] -> int_of_string_opt n
      | [] -> Some 1
      | _ -> None
    in
    let fault =
      match kind with
      | "short" -> Some (Engine_core.Faultkit.Short_write 3)
      | "enospc" -> Some Engine_core.Faultkit.Enospc
      | "crash" -> Some Engine_core.Faultkit.Crash_before_sync
      | _ -> None
    in
    match (at, fault) with
    | Some at, Some fault ->
      arm_faults db
        (!fault_points @ [ Engine_core.Faultkit.Log_io { at; fault } ])
    | _ -> print_endline fault_usage)
  | [ "trigger"; name ] ->
    arm_faults db
      (!fault_points @ [ Engine_core.Faultkit.Trigger_body { name } ])
  | [ "seed"; k ] -> (
    match int_of_string_opt k with
    | Some seed ->
      arm_faults db
        (Engine_core.Faultkit.random_plan ~seed
           ~ops:[ "scan"; "filter"; "join"; "project"; "audit" ])
    | None -> print_endline fault_usage)
  | _ -> print_endline fault_usage

let handle_log db args =
  match args with
  | "open" :: path :: rest -> (
    let policy =
      match rest with
      | [] | [ "closed" ] -> Some Audit_log.Wal.Fail_closed
      | [ "open" ] -> Some Audit_log.Wal.Fail_open
      | _ -> None
    in
    match policy with
    | None -> print_endline "usage: \\log open <path> [closed|open]"
    | Some policy ->
      let r = Db.Database.attach_audit_log db ~policy path in
      Printf.printf
        "audit log %s attached (%s): %d records recovered, %d bytes truncated\n"
        path
        (Audit_log.Wal.policy_to_string policy)
        r.Audit_log.Wal.valid_records r.Audit_log.Wal.truncated_bytes)
  | [ "policy"; p ] -> (
    match (Db.Database.audit_log db, p) with
    | None, _ -> print_endline "no audit log attached"
    | Some w, "closed" -> Audit_log.Wal.set_policy w Audit_log.Wal.Fail_closed
    | Some w, "open" -> Audit_log.Wal.set_policy w Audit_log.Wal.Fail_open
    | Some _, _ -> print_endline "usage: \\log policy <closed|open>")
  | [ "dump" ] -> (
    match Db.Database.audit_log db with
    | None -> print_endline "no audit log attached"
    | Some w ->
      let records, _ = Audit_log.Wal.read_all (Audit_log.Wal.path w) in
      List.iter
        (fun r -> print_endline (Audit_log.Wal.record_to_string r))
        records)
  | [ "status" ] -> (
    match Db.Database.audit_log db with
    | None -> print_endline "no audit log attached"
    | Some w ->
      Printf.printf "audit log %s: %s, %s, %d records appended this session\n"
        (Audit_log.Wal.path w)
        (Audit_log.Wal.policy_to_string (Audit_log.Wal.policy w))
        (if Audit_log.Wal.is_open w then "open" else "DEAD")
        (Audit_log.Wal.appended w))
  | [ "close" ] -> Db.Database.detach_audit_log db
  | _ -> print_endline "usage: \\log <open|policy|dump|status|close>"

let opt_of = function
  | "off" -> Ok None
  | s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok (Some n)
    | _ -> Error ())

let handle_command db line =
  let parts = String.split_on_char ' ' (String.trim line) in
  match parts with
  | [ "\\q" ] -> raise Exit
  | [ "\\tables" ] ->
    List.iter print_endline (Storage.Catalog.names (Db.Database.catalog db))
  | [ "\\audits" ] ->
    List.iter
      (fun n ->
        let v = Db.Database.audit_view db n in
        Printf.printf "%s (%d sensitive IDs)\n" n
          (Audit_core.Sensitive_view.cardinality v))
      (Db.Database.audit_names db)
  | [ "\\triggers" ] ->
    List.iter
      (fun (t : Audit_core.Trigger.t) ->
        let ev =
          match t.Audit_core.Trigger.event with
          | Sql.Ast.On_access a -> "ON ACCESS TO " ^ a
          | Sql.Ast.On_dml (tb, e) ->
            Printf.sprintf "ON %s AFTER %s" tb
              (match e with
              | Sql.Ast.Ev_insert -> "INSERT"
              | Sql.Ast.Ev_update -> "UPDATE"
              | Sql.Ast.Ev_delete -> "DELETE")
        in
        Printf.printf "%s %s\n" t.Audit_core.Trigger.name ev)
      (Audit_core.Trigger.all (Db.Database.trigger_manager db))
  | [ "\\notifications" ] ->
    List.iter print_endline (Db.Database.notifications db);
    Db.Database.clear_notifications db
  | [ "\\accessed" ] ->
    List.iter
      (fun (audit, ids) ->
        Printf.printf "%s: %s\n" audit
          (String.concat ", " (List.map Storage.Value.to_string ids)))
      (Db.Database.last_accessed db)
  | [ "\\alarms" ] ->
    List.iter print_endline (Db.Database.alarms db);
    Db.Database.clear_alarms db
  | "\\dump" :: rest ->
    let text = Db.Database.dump db in
    (match rest with
    | [] -> print_string text
    | path :: _ ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "dumped to %s\n" path)
  | "\\plan" :: rest ->
    let sql = String.concat " " rest in
    let plan = Db.Database.plan_sql db sql in
    print_string (Plan.Logical.to_string plan)
  | "\\analyze" :: rest ->
    let sql = String.concat " " rest in
    print_result (Db.Database.exec db ("EXPLAIN ANALYZE " ^ sql))
  | [ "\\verify"; "mode"; m ] -> (
    match String.lowercase_ascii m with
    | "off" -> Db.Database.set_verify_plans db Db.Database.Off
    | "warn" -> Db.Database.set_verify_plans db Db.Database.Warn
    | "strict" -> Db.Database.set_verify_plans db Db.Database.Strict
    | _ -> print_endline "usage: \\verify mode <off|warn|strict>")
  | "\\verify" :: rest when rest <> [] ->
    let sql = String.concat " " rest in
    let vs = Db.Database.verify_sql db sql in
    print_string (Analysis.Plan_verify.report vs);
    print_string (Db.Database.elision_report db)
  | [ "\\elide" ] ->
    print_endline
      (match Db.Database.elision_mode db with
      | Db.Database.Elide_off -> "off"
      | Db.Database.Elide_certified -> "certified")
  | [ "\\elide"; m ] -> (
    match String.lowercase_ascii m with
    | "off" -> Db.Database.set_elision_mode db Db.Database.Elide_off
    | "certified" | "on" ->
      Db.Database.set_elision_mode db Db.Database.Elide_certified
    | _ -> print_endline "usage: \\elide [off|certified]")
  | [ "\\heuristic"; h ] -> (
    match String.lowercase_ascii h with
    | "leaf" -> Db.Database.set_heuristic db Audit_core.Placement.Leaf
    | "hcn" -> Db.Database.set_heuristic db Audit_core.Placement.Hcn
    | "highest" -> Db.Database.set_heuristic db Audit_core.Placement.Highest
    | _ -> print_endline "unknown heuristic (leaf | hcn | highest)")
  | [ "\\exec" ] ->
    print_endline
      (match Db.Database.exec_mode db with
      | `Row -> "row"
      | `Batch -> "batch"
      | `Compiled -> "compiled")
  | [ "\\exec"; m ] -> (
    match String.lowercase_ascii m with
    | "row" -> Db.Database.set_exec_mode db `Row
    | "batch" -> Db.Database.set_exec_mode db `Batch
    | "compiled" -> Db.Database.set_exec_mode db `Compiled
    | _ -> print_endline "usage: \\exec [row|batch|compiled]")
  | [ "\\storage" ] ->
    print_endline
      (Storage.Table.storage_to_string (Db.Database.storage_mode db))
  | [ "\\storage"; m ] -> (
    match Storage.Table.storage_of_string (String.lowercase_ascii m) with
    | Some st -> Db.Database.set_storage_mode db st
    | None -> print_endline "usage: \\storage [heap|columnar]")
  | [ "\\user"; u ] -> Db.Database.set_user db u
  | [ "\\timeout"; s ] -> (
    match s with
    | "off" -> Db.Database.set_timeout db None
    | _ -> (
      match float_of_string_opt s with
      | Some t when t > 0.0 -> Db.Database.set_timeout db (Some t)
      | _ -> print_endline "usage: \\timeout <seconds|off>"))
  | [ "\\budget"; which; n ] -> (
    match (which, opt_of n) with
    | "rows", Ok b -> Db.Database.set_row_budget db b
    | "mem", Ok b -> Db.Database.set_mem_budget db b
    | _ -> print_endline "usage: \\budget <rows|mem> <n|off>")
  | "\\fault" :: args -> handle_fault db args
  | "\\log" :: args -> handle_log db args
  | [ "\\tpch"; sf ] -> (
    match float_of_string_opt sf with
    | Some sf ->
      let sizes = Tpch.Dbgen.load db ~sf in
      Printf.printf "loaded TPC-H sf=%g: %d customers, %d orders\n" sf
        sizes.Tpch.Dbgen.customers sizes.Tpch.Dbgen.orders
    | None -> print_endline "usage: \\tpch <scale factor>")
  | _ -> print_endline usage_commands

let repl db =
  let buf = Buffer.create 256 in
  print_endline "select_triggers shell — SQL statements end with ';'";
  print_endline usage_commands;
  (* The dispatch guard: nothing short of \q (or EOF) kills the session. *)
  let guarded f = try f () with Exit -> raise Exit | e -> report_error e in
  try
    while true do
      print_string (if Buffer.length buf = 0 then "sql> " else "  -> ");
      let line = try read_line () with End_of_file -> raise Exit in
      let trimmed = String.trim line in
      if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '\\'
      then guarded (fun () -> handle_command db trimmed)
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.length trimmed > 0
           && trimmed.[String.length trimmed - 1] = ';' then begin
          let sql = Buffer.contents buf in
          Buffer.clear buf;
          guarded (fun () -> print_result (Db.Database.exec db sql))
        end
      end
    done
  with Exit -> print_endline "bye"

let run_file db path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  match Db.Database.exec_script db content with
  | results -> List.iter print_result results
  | exception e ->
    report_error e;
    exit 1

(* ------------------------------------------------------------------ *)
(* Client mode: the same REPL surface over a serverd connection        *)
(* ------------------------------------------------------------------ *)

(* "host:port" with a numeric port means TCP; anything else is a
   Unix-domain socket path. *)
let parse_connect spec : Server.Daemon.listen =
  match String.rindex_opt spec ':' with
  | Some i -> (
    match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
    | Some port when port > 0 ->
      let host = String.sub spec 0 i in
      `Tcp ((if host = "" then "127.0.0.1" else host), port)
    | _ -> `Unix spec)
  | None -> `Unix spec

(* The REPL and script runner talk through this little vtable so the
   plain connection and the retrying one share the same surface. With
   --retry, dropped connections and lost responses are absorbed: the
   client reconnects with its session token and resends the same
   statement seq, which the server either executes (first delivery) or
   answers from its reply cache — never both. *)
type remote = {
  send : string -> (string, string) result;
  finish : unit -> unit;
}

let plain_remote conn =
  { send = (fun line -> Server.Client.exec conn line);
    finish = (fun () -> Server.Client.quit conn) }

let retry_remote rt =
  { send = (fun line -> Server.Client.Retry.exec rt line);
    finish = (fun () -> Server.Client.Retry.quit rt) }

let client_send remote line =
  match remote.send line with
  | Ok text -> if text <> "" then print_endline text
  | Error m -> print_endline m
  | exception Server.Client.Protocol_error m ->
    Printf.printf "connection error: %s\n" m;
    raise Exit
  | exception Server.Client.Retry.Gave_up m ->
    Printf.printf "connection error: %s\n" m;
    raise Exit

let client_repl conn =
  let buf = Buffer.create 256 in
  print_endline "select_triggers shell — SQL statements end with ';'";
  print_endline "(connected to serverd; \\q quits, other commands run remotely)";
  try
    while true do
      print_string (if Buffer.length buf = 0 then "sql> " else "  -> ");
      let line = try read_line () with End_of_file -> raise Exit in
      let trimmed = String.trim line in
      if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '\\'
      then begin
        if trimmed = "\\q" then raise Exit;
        client_send conn trimmed
      end
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.length trimmed > 0
           && trimmed.[String.length trimmed - 1] = ';' then begin
          let sql = Buffer.contents buf in
          Buffer.clear buf;
          client_send conn sql
        end
      end
    done
  with Exit ->
    conn.finish ();
    print_endline "bye"

(* Script mode over a connection: the server executes one statement per
   request, so split the script on ';' client-side. Statement errors
   print the server's error line and exit nonzero, like local -f. *)
let client_run_file conn path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  let failed = ref false in
  String.split_on_char ';' content
  |> List.iter (fun stmt ->
         if String.trim stmt <> "" then
           match conn.send (stmt ^ ";") with
           | Ok text -> if text <> "" then print_endline text
           | Error m ->
             print_endline m;
             failed := true
           | exception Server.Client.Protocol_error m ->
             Printf.printf "connection error: %s\n" m;
             failed := true
           | exception Server.Client.Retry.Gave_up m ->
             Printf.printf "connection error: %s\n" m;
             failed := true);
  conn.finish ();
  if !failed then exit 1

let client_main connect user file retry =
  let user = Option.value user ~default:"admin" in
  let addr = parse_connect connect in
  let remote =
    if retry then begin
      let rt =
        Server.Client.Retry.create ~recv_timeout_s:5.0
          ~seed:(Unix.getpid ()) addr ~user
      in
      (* Connect eagerly so an unreachable server fails fast with a
         clear message instead of burning the backoff schedule. *)
      (match Server.Client.Retry.exec rt "\\session" with
      | Ok s -> Printf.printf "connected (retrying): %s\n%!" s
      | Error m ->
        Printf.eprintf "shell: cannot connect to %s: %s\n" connect m;
        exit 1
      | exception (Server.Client.Retry.Gave_up m | Server.Client.Protocol_error m)
        ->
        Printf.eprintf "shell: cannot connect to %s: %s\n" connect m;
        exit 1
      | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "shell: cannot connect to %s: %s\n" connect
          (Unix.error_message e);
        exit 1);
      retry_remote rt
    end
    else begin
      let conn =
        try Server.Client.connect addr
        with Unix.Unix_error (e, _, _) ->
          Printf.eprintf "shell: cannot connect to %s: %s\n" connect
            (Unix.error_message e);
          exit 1
      in
      let sid = Server.Client.hello conn ~user in
      Printf.printf "connected: session %d (user %s)\n%!" sid user;
      plain_remote conn
    end
  in
  match file with
  | Some path -> client_run_file remote path
  | None -> client_repl remote

let main file tpch_sf connect user retry =
  match connect with
  | Some spec -> client_main spec user file retry
  | None -> (
    let db = Db.Database.create () in
    (match user with Some u -> Db.Database.set_user db u | None -> ());
    (match tpch_sf with
    | Some sf ->
      let sizes = Tpch.Dbgen.load db ~sf in
      Printf.printf "loaded TPC-H sf=%g: %d customers, %d orders\n%!" sf
        sizes.Tpch.Dbgen.customers sizes.Tpch.Dbgen.orders
    | None -> ());
    match file with Some path -> run_file db path | None -> repl db)

open Cmdliner

let file =
  let doc = "Execute the SQL script $(docv) and exit (instead of the REPL)." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let tpch =
  let doc = "Preload the TPC-H benchmark at scale factor $(docv)." in
  Arg.(value & opt (some float) None & info [ "tpch" ] ~docv:"SF" ~doc)

let connect =
  let doc =
    "Connect to a running serverd at $(docv) (a Unix socket path, or \
     HOST:PORT for TCP) instead of running an in-process engine."
  in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)

let user_arg =
  let doc = "Session user name (default admin)." in
  Arg.(value & opt (some string) None & info [ "u"; "user" ] ~docv:"NAME" ~doc)

let retry_arg =
  let doc =
    "With --connect: survive dropped connections and lost responses by \
     reconnecting (same session token) and resending the in-flight \
     statement with its sequence number — the server deduplicates, so \
     each statement executes at most once. Also absorbs server overload \
     responses by waiting the hinted delay."
  in
  Arg.(value & flag & info [ "retry" ] ~doc)

let cmd =
  let doc = "interactive SQL shell with SELECT triggers for data auditing" in
  Cmd.v
    (Cmd.info "shell" ~doc)
    Term.(const main $ file $ tpch $ connect $ user_arg $ retry_arg)

let () = exit (Cmd.eval cmd)
